//! The server: accept loop, request routing, and lifecycle.
//!
//! Four endpoints, all JSON:
//!
//! | endpoint | answers |
//! |---|---|
//! | `GET /healthz` | serving generation: model, epoch, dims, source |
//! | `POST /infer` | `{"input":[...]}` → logits via the micro-batcher |
//! | `GET /metrics` | the full telemetry snapshot (`serve.*` and all) |
//! | `POST /shutdown` | acknowledges, then winds the server down |
//!
//! Threads: one accept loop, one handler per connection (keep-alive), one
//! batch worker, one snapshot watcher — all spawned through [`crate::rt`]
//! and all torn down by [`Server::stop`] / [`Server::wait`]. Batched
//! forwards run on the tensor worker pool, so `DROPBACK_THREADS` governs
//! compute parallelism independently of connection count.
//!
//! # Overload behavior
//!
//! The server defends itself at three rings, each counted under
//! `serve.shed.*` (see `docs/SERVING.md`):
//!
//! 1. **Connections** — at most [`ServerConfig::max_conns`] concurrent
//!    connections; excess ones are answered `503` + `Retry-After` and
//!    closed instead of spawning a handler.
//! 2. **Queue depth** — the batch queue refuses past
//!    [`BatchConfig::queue_cap`] (`503`).
//! 3. **Deadlines** — each `/infer` carries a
//!    [`ServerConfig::request_deadline`]; requests that expire while
//!    queued are shed *before* inference, and socket I/O is bounded by
//!    [`ServerConfig::io_timeout`] so a slow-loris client costs one
//!    handler for a bounded time (`serve.timeout.{read,write}`).
//!
//! Shutdown is a two-phase drain: stop admitting, let in-flight requests
//! finish inside [`ServerConfig::drain`], then force-close whatever is
//! left (`serve.drained` / `serve.drain.forced` in the final digest).

use crate::batch::{BatchConfig, BatchQueue};
use crate::clock::Deadline;
use crate::error::ServeError;
use crate::http::{self, Request};
use crate::log::AccessLog;
use crate::model::{ModelSlot, ServingModel};
use crate::rt::{self, ChaosHook, Gate, Limiter, Shutdown};
use crate::watcher;
use dropback::{CheckpointStore, FaultAction, FaultStream};
use dropback_telemetry::{
    flightrec, trace, Collector, Json, Span, Stopwatch, Telemetry, TelemetrySnapshot,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Everything tunable about a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`] for the resolved one).
    pub addr: String,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// How often the watcher polls the snapshot directory.
    pub poll: Duration,
    /// Most concurrent connections admitted; excess ones are shed with
    /// `503` + `Retry-After` at the accept loop.
    pub max_conns: usize,
    /// Socket read/write timeout per connection — the slow-loris bound.
    pub io_timeout: Duration,
    /// Deadline each `/infer` request carries through the batch queue;
    /// requests older than this are shed unevaluated.
    pub request_deadline: Duration,
    /// How long graceful shutdown waits for in-flight requests before
    /// force-closing them.
    pub drain: Duration,
    /// The `Retry-After` hint attached to every shedding `503`.
    pub retry_after: Duration,
    /// Test-only fault injection: every accepted connection's socket is
    /// wrapped in a [`FaultStream`] applying the hook's next planned
    /// action. Production configs leave this `None`.
    pub chaos: Option<Arc<ChaosHook>>,
    /// Structured JSONL access log: one record per request (see
    /// `docs/SERVING.md` for the schema). `None` disables logging.
    pub access_log: Option<PathBuf>,
    /// Arms the always-on flight recorder and names the file its ring is
    /// dumped to when shutdown force-closes in-flight requests
    /// (`serve.drain.forced > 0`). `None` leaves the recorder off, so
    /// the request path pays only the one relaxed atomic load per
    /// instrumentation site.
    pub flightrec_dump: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            poll: Duration::from_millis(50),
            max_conns: 256,
            io_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(2),
            drain: Duration::from_secs(2),
            retry_after: Duration::from_secs(1),
            chaos: None,
            access_log: None,
            flightrec_dump: None,
        }
    }
}

/// Shared state every connection handler needs.
struct Ctx {
    slot: Arc<ModelSlot>,
    queue: Arc<BatchQueue>,
    collector: Arc<Collector>,
    shutdown: Arc<Shutdown>,
    gate: Arc<Gate>,
    limiter: Arc<Limiter>,
    chaos: Option<Arc<ChaosHook>>,
    access: Option<AccessLog>,
    io_timeout: Duration,
    request_deadline: Duration,
    /// Pre-rendered `Retry-After` value (whole seconds, at least 1).
    retry_after: String,
}

impl Ctx {
    fn shed(&self, ring: &str) {
        self.collector.counter("serve.shed").inc();
        self.collector.counter(&format!("serve.shed.{ring}")).inc();
    }

    /// Appends one access-log record (no-op without a configured log).
    /// A failed write bumps `serve.access_log_failed` — logging must
    /// never take the connection down with it.
    fn log_access(
        &self,
        req: &Request,
        id: u64,
        conn: u64,
        out: &Outcome,
        write_ns: u64,
        write_failed: bool,
    ) {
        let Some(log) = &self.access else { return };
        let opt = |v: Option<u64>| v.map(Json::from).unwrap_or(Json::Null);
        let mut fields = vec![
            ("id".to_string(), Json::from(id)),
            ("conn".to_string(), Json::from(conn)),
            ("method".to_string(), Json::from(req.method.as_str())),
            ("target".to_string(), Json::from(req.target.as_str())),
            ("status".to_string(), Json::from(u64::from(out.status))),
            (
                "reason".to_string(),
                out.reason.map(Json::from).unwrap_or(Json::Null),
            ),
            ("epoch".to_string(), opt(out.epoch.map(|e| e as u64))),
            ("batch_id".to_string(), opt(out.batch_id)),
            (
                "batch_fill".to_string(),
                opt(out.batch_fill.map(|f| f as u64)),
            ),
            ("queue_ns".to_string(), Json::from(out.queue_ns)),
            ("infer_ns".to_string(), Json::from(out.infer_ns)),
            ("write_ns".to_string(), Json::from(write_ns)),
        ];
        if write_failed {
            fields.push(("write_failed".to_string(), Json::from(true)));
        }
        if log.write(&Json::Obj(fields)).is_err() {
            self.collector.counter("serve.access_log_failed").inc();
        }
    }
}

/// Everything `serve_connection` needs to answer, time, trace, and log
/// one routed request — the per-request record that flows from [`route`]
/// to the response writer and the access log.
struct Outcome {
    status: u16,
    body: String,
    content_type: &'static str,
    /// Machine-readable slug for refusals ([`ServeError::reason`]).
    reason: Option<&'static str>,
    /// Model generation that answered (`/infer` successes only).
    epoch: Option<usize>,
    /// Micro-batch the request rode in (`/infer` successes only).
    batch_id: Option<u64>,
    /// Fill of that micro-batch (`/infer` successes only).
    batch_fill: Option<usize>,
    /// Nanoseconds queued before the batch flushed (0 outside `/infer`).
    queue_ns: u64,
    /// Nanoseconds of batched forward attributed to this request.
    infer_ns: u64,
}

impl Outcome {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
            reason: None,
            epoch: None,
            batch_id: None,
            batch_fill: None,
            queue_ns: 0,
            infer_ns: 0,
        }
    }

    fn error(e: &ServeError) -> Self {
        Self {
            reason: Some(e.reason()),
            ..Self::json(e.http_status(), error_body(e))
        }
    }

    /// A refusal whose HTTP status is routing's call (404/405), not the
    /// error type's.
    fn refuse(status: u16, reason: &'static str, e: &ServeError) -> Self {
        Self {
            reason: Some(reason),
            ..Self::json(status, error_body(e))
        }
    }
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::stop`] (tests, benches) or [`Server::wait`] (the bin).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    slot: Arc<ModelSlot>,
    collector: Arc<Collector>,
    shutdown: Arc<Shutdown>,
    queue: Arc<BatchQueue>,
    gate: Arc<Gate>,
    drain: Duration,
    handles: Vec<rt::JoinHandle>,
    /// Measures serving uptime for the shutdown digest.
    uptime: Stopwatch,
    /// Where the flight-recorder ring is dumped when the drain is forced.
    flightrec_dump: Option<PathBuf>,
}

impl Server {
    /// Loads the newest valid snapshot from `store`, binds the listener,
    /// and starts the accept loop, batch worker, and hot-swap watcher.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSnapshot`] when the directory holds nothing
    /// loadable, plus model-building and socket errors.
    pub fn start(cfg: ServerConfig, mut store: CheckpointStore) -> Result<Self, ServeError> {
        let collector = Arc::new(Collector::new());
        let mut tel = Telemetry::disabled();
        let state = store
            .load_latest(&mut tel)?
            .ok_or_else(|| ServeError::NoSnapshot(store.dir().to_path_buf()))?;
        collector
            .counter("serve.swap_rejected")
            .add(store.take_skipped().len() as u64);
        // Register the overload/drain counters up front so every digest
        // carries them, zeros included — dashboards and the chaos-smoke
        // stage grep for them unconditionally.
        for name in [
            "serve.shed",
            "serve.drained",
            "serve.drain.forced",
            "serve.timeout.read",
            "serve.timeout.write",
        ] {
            collector.counter(name).add(0);
        }
        // Same for the per-stage histograms: the shutdown digest reports
        // queue/infer/write percentiles even for a server that answered
        // nothing.
        for name in [
            "serve.request_ns",
            "serve.queue_ns",
            "serve.infer_ns",
            "serve.write_ns",
        ] {
            let _ = collector.histogram(name);
        }
        if cfg.flightrec_dump.is_some() {
            flightrec::enable();
        }

        // The store names snapshots state-{epoch:08}.dbk2, so the loaded
        // state's epoch identifies its source file.
        let source = store
            .dir()
            .join(format!("state-{:08}.dbk2", state.progress.next_epoch));
        let model = ServingModel::from_state(&state, source.clone())?;
        collector
            .gauge("serve.model_epoch")
            .set(model.epoch() as f64);
        let slot = Arc::new(ModelSlot::new(model));

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(Shutdown::new());
        let queue = Arc::new(BatchQueue::new(cfg.batch));
        let gate = Arc::new(Gate::new());

        let mut handles = Vec::new();
        handles.push(queue.start_worker(Arc::clone(&slot), Arc::clone(&collector))?);
        handles.push(watcher::start(
            store,
            source,
            Arc::clone(&slot),
            Arc::clone(&collector),
            Arc::clone(&shutdown),
            cfg.poll,
        )?);

        let access = match &cfg.access_log {
            Some(path) => Some(AccessLog::create(path)?),
            None => None,
        };
        let ctx = Arc::new(Ctx {
            slot: Arc::clone(&slot),
            queue: Arc::clone(&queue),
            collector: Arc::clone(&collector),
            shutdown: Arc::clone(&shutdown),
            gate: Arc::clone(&gate),
            limiter: Arc::new(Limiter::new(cfg.max_conns.max(1))),
            chaos: cfg.chaos.clone(),
            access,
            io_timeout: cfg.io_timeout,
            request_deadline: cfg.request_deadline,
            retry_after: cfg.retry_after.as_secs().max(1).to_string(),
        });
        let accept_shutdown = Arc::clone(&shutdown);
        handles.push(rt::spawn("accept", move || {
            accept_loop(&listener, &ctx, &accept_shutdown);
        })?);

        Ok(Self {
            addr,
            slot,
            collector,
            shutdown,
            queue,
            gate,
            drain: cfg.drain,
            handles,
            uptime: Stopwatch::started(),
            flightrec_dump: cfg.flightrec_dump,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently answering requests.
    pub fn model(&self) -> Arc<ServingModel> {
        self.slot.get()
    }

    /// The server's metrics registry (`serve.*` counters live here).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Triggers shutdown remotely-equivalent to `POST /shutdown`.
    pub fn trigger_shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until something triggers shutdown (`POST /shutdown`,
    /// [`Server::trigger_shutdown`]), then drains and tears the threads
    /// down and returns the final telemetry snapshot.
    pub fn wait(self) -> TelemetrySnapshot {
        while !self.shutdown.wait_for(Duration::from_millis(500)) {}
        self.teardown()
    }

    /// Stops the server now (graceful drain included) and returns the
    /// final telemetry snapshot.
    pub fn stop(self) -> TelemetrySnapshot {
        self.shutdown.trigger();
        self.teardown()
    }

    /// Two-phase wind-down: stop admitting, drain in-flight requests
    /// within the drain deadline, then force-close the stragglers.
    fn teardown(self) -> TelemetrySnapshot {
        // Phase 1: stop admitting. New /infer requests are shed with 503
        // from here on; connections are still *accepted* so the refusal
        // is a typed response, not a vanished socket.
        self.shutdown.trigger();
        // Phase 2: drain. In-flight requests hold gate passes; the batch
        // worker is still running, so they complete normally — we just
        // bound how long that may take.
        self.gate.wait_idle_within(self.drain);
        // Phase 3: force. Whatever is still in flight is out of time:
        // refuse everything left in the queue (their handlers answer 503)
        // and stop the worker. The accept loop is blocked in accept();
        // poke it awake so it observes the stop and exits.
        let forced = self.gate.active() as u64;
        self.collector.counter("serve.drain.forced").add(forced);
        self.queue.stop();
        self.shutdown.force();
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        for h in self.handles {
            let _ = h.join();
        }
        if let Some(ns) = self.uptime.elapsed_ns() {
            self.collector.gauge("serve.uptime_s").set(ns as f64 / 1e9);
        }
        // A forced drain means requests died mid-flight — exactly the
        // moment the flight recorder exists for. Dump its ring as a
        // Chrome trace so the post-mortem has the final request lanes.
        if forced > 0 {
            if let Some(path) = &self.flightrec_dump {
                let dumped = std::fs::File::create(path)
                    .and_then(|mut f| flightrec::write_dump(&mut f))
                    .is_ok();
                let counter = if dumped {
                    "serve.flightrec_dumps"
                } else {
                    "serve.flightrec_dump_failed"
                };
                self.collector.counter(counter).inc();
            }
        }
        TelemetrySnapshot::capture(&self.collector)
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, shutdown: &Shutdown) {
    loop {
        let conn = listener.accept();
        // Keep accepting while *draining* — late arrivals deserve a typed
        // 503, not a vanished socket. Only a full stop ends the loop.
        if shutdown.is_stopped() {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                let conn_id = rt::next_conn_id();
                ctx.collector.counter("serve.connections").inc();
                // Admission control: over the cap, the connection is
                // answered 503 + Retry-After right here — no handler
                // thread, no queue slot.
                let Some(permit) = ctx.limiter.try_acquire() else {
                    shed_connection(stream, ctx);
                    continue;
                };
                let action = ctx
                    .chaos
                    .as_ref()
                    .map_or(FaultAction::None, |hook| hook.next_action());
                let ctx = Arc::clone(ctx);
                if rt::spawn("conn", move || {
                    // The permit rides the handler thread; dropping it on
                    // any exit path frees the connection slot.
                    let _permit = permit;
                    handle_connection(stream, action, &ctx, conn_id);
                })
                .is_err()
                {
                    // Thread exhaustion: the connection drops; the client
                    // retries. Nothing else to do without a thread.
                }
            }
            Err(_) => {
                ctx.collector.counter("serve.accept_errors").inc();
            }
        }
    }
}

/// Refuses one over-cap connection with `503` + `Retry-After` without
/// spawning a handler for it.
fn shed_connection(stream: TcpStream, ctx: &Ctx) {
    ctx.shed("conn");
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    // Bound the refusal write too: the accept loop must never block on a
    // peer that connected and went away.
    let _ = stream.set_write_timeout(Some(ctx.io_timeout));
    let _ = respond(&mut stream, &Outcome::error(&ServeError::Overloaded), ctx);
}

/// Writes one response, attaching `Retry-After` to every shedding 503.
fn respond(w: &mut impl Write, out: &Outcome, ctx: &Ctx) -> std::io::Result<()> {
    if out.status == 503 {
        http::write_response_typed(
            w,
            out.status,
            out.content_type,
            &[("Retry-After", ctx.retry_after.clone())],
            &out.body,
        )
    } else {
        http::write_response_typed(w, out.status, out.content_type, &[], &out.body)
    }
}

/// Whether an error is the socket timing out (the slow-loris bound
/// firing) rather than the peer misbehaving at the protocol level.
/// Platforms disagree on the kind a timed-out socket read reports, so
/// both are checked.
fn is_timeout_kind(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

fn is_read_timeout(e: &ServeError) -> bool {
    matches!(e, ServeError::Io(io) if is_timeout_kind(io.kind()))
}

/// Applies socket options, wires in the chaos wrapper when armed, and
/// hands the stream to the generic keep-alive loop.
fn handle_connection(stream: TcpStream, action: FaultAction, ctx: &Ctx, conn_id: u64) {
    // Responses are small and latency-bound; never let them sit in
    // Nagle's buffer waiting for the client's ACK. The read/write
    // timeouts are the slow-loris bound: a peer that stops moving bytes
    // costs this handler at most io_timeout before the connection dies.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.io_timeout));
    let _ = stream.set_write_timeout(Some(ctx.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if action == FaultAction::None {
        serve_connection(BufReader::new(read_half), stream, ctx, conn_id);
    } else {
        // Each half keeps its own fault position; the same action on
        // both models one misbehaving peer.
        serve_connection(
            BufReader::new(FaultStream::new(read_half, action)),
            FaultStream::new(stream, action),
            ctx,
            conn_id,
        );
    }
}

/// Serves one keep-alive connection until the peer closes, asks to
/// close, sends garbage, times out, or shutdown trips. Generic over the
/// stream halves so the chaos suite can interpose [`FaultStream`]s.
///
/// Every successfully parsed request gets a fresh id from
/// [`rt::next_request_id`], opens a `serve.req` async lane spanning
/// route + reply-write (with a nested `serve.write` lane around the
/// socket write), and lands one access-log record when logging is on.
fn serve_connection(mut reader: impl BufRead, mut writer: impl Write, ctx: &Ctx, conn_id: u64) {
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(e) => {
                if is_read_timeout(&e) {
                    // A stalled client, not a protocol error: there is
                    // nobody attentive to answer, so just hang up.
                    ctx.collector.counter("serve.timeout.read").inc();
                    return;
                }
                // Protocol garbage never earned a request id: the typed
                // refusal goes out, but there is no request to log.
                let _ = respond(&mut writer, &Outcome::error(&e), ctx);
                return;
            }
        };
        let close = req.wants_close();
        let req_id = rt::next_request_id();
        // One tracing decision per request, made here and carried through
        // every lane the request opens (req, write, queue, infer): a
        // toggle mid-request must not leave a begin or end orphaned.
        let traced = trace::is_tracing();
        trace::async_begin_for(traced, "serve.req", req_id, &[("conn", conn_id as f64)]);
        let out = route(&req, ctx, req_id, traced);
        trace::async_begin_for(traced, "serve.write", req_id, &[]);
        let watch = Stopwatch::started();
        let write_res = respond(&mut writer, &out, ctx);
        let write_ns = watch.elapsed_ns().unwrap_or(0);
        trace::async_end_for(traced, "serve.write", req_id, &[]);
        trace::async_end_for(
            traced,
            "serve.req",
            req_id,
            &[("status", f64::from(out.status))],
        );
        ctx.collector
            .histogram("serve.write_ns")
            .record(write_ns as f64);
        ctx.log_access(&req, req_id, conn_id, &out, write_ns, write_res.is_err());
        if let Err(e) = write_res {
            if is_timeout_kind(e.kind()) {
                ctx.collector.counter("serve.timeout.write").inc();
            }
            return;
        }
        if close || ctx.shutdown.is_set() {
            return;
        }
    }
}

fn error_body(e: &ServeError) -> String {
    Json::Obj(vec![("error".into(), Json::from(e.to_string()))]).render()
}

fn route(req: &Request, ctx: &Ctx, req_id: u64, traced: bool) -> Outcome {
    let _span = Span::enter("serve.request");
    // Split `?format=prometheus`-style queries off the path; every
    // endpoint matches on the bare path.
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(ctx),
        ("POST", "/infer") => infer(req, ctx, req_id, traced),
        ("GET", "/metrics") => metrics(ctx, query),
        ("GET", "/debug/flightrec") => {
            // The recorder dump is already a complete Chrome trace
            // document; hand it over verbatim.
            Outcome::json(200, flightrec::dump_json().render())
        }
        ("POST", "/shutdown") => {
            ctx.shutdown.trigger();
            Outcome::json(
                200,
                Json::Obj(vec![("status".into(), Json::from("shutting-down"))]).render(),
            )
        }
        (_, "/healthz" | "/infer" | "/metrics" | "/shutdown" | "/debug/flightrec") => {
            Outcome::refuse(
                405,
                "method-not-allowed",
                &ServeError::BadRequest(format!("method {} not allowed on {path}", req.method)),
            )
        }
        _ => Outcome::refuse(
            404,
            "not-found",
            &ServeError::BadRequest(format!(
                "no such endpoint {path:?} (have /healthz, /infer, /metrics, \
                 /shutdown, /debug/flightrec)"
            )),
        ),
    }
}

fn healthz(ctx: &Ctx) -> Outcome {
    let m = ctx.slot.get();
    let body = Json::Obj(vec![
        ("status".into(), Json::from("ok")),
        ("model".into(), Json::from(m.name())),
        ("epoch".into(), Json::from(m.epoch())),
        ("in_dim".into(), Json::from(m.in_dim())),
        ("out_dim".into(), Json::from(m.out_dim())),
        ("entries".into(), Json::from(m.entries())),
        (
            "source".into(),
            Json::from(m.source().to_string_lossy().as_ref()),
        ),
    ]);
    Outcome::json(200, body.render())
}

/// `/metrics`: the JSON snapshot by default, the Prometheus plain-text
/// exposition under `?format=prometheus`. Any other `format=` value is a
/// typed 400 so a dashboard typo fails loudly.
fn metrics(ctx: &Ctx, query: &str) -> Outcome {
    let snap = TelemetrySnapshot::capture(&ctx.collector);
    let format = query
        .split('&')
        .find_map(|pair| pair.strip_prefix("format="))
        .unwrap_or("json");
    match format {
        "json" => Outcome::json(200, snap.to_json().render()),
        "prometheus" => Outcome {
            content_type: "text/plain; version=0.0.4",
            ..Outcome::json(200, snap.render_prometheus())
        },
        other => Outcome::error(&ServeError::BadRequest(format!(
            "unknown metrics format {other:?} (have json, prometheus)"
        ))),
    }
}

fn parse_input(body: &[u8]) -> Result<Vec<f32>, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    let json = Json::parse(text).map_err(|e| ServeError::BadRequest(format!("bad JSON: {e}")))?;
    let arr = json
        .get("input")
        .and_then(Json::as_array)
        .ok_or_else(|| ServeError::BadRequest("expected {\"input\": [numbers]}".into()))?;
    let mut input = Vec::with_capacity(arr.len());
    for (i, v) in arr.iter().enumerate() {
        let f = v
            .as_f64()
            .ok_or_else(|| ServeError::BadRequest(format!("input[{i}] is not a number")))?;
        // f32 values render exactly into JSON and cast back exactly, so
        // the wire preserves input bits end to end.
        input.push(f as f32);
    }
    Ok(input)
}

fn infer(req: &Request, ctx: &Ctx, req_id: u64, traced: bool) -> Outcome {
    let watch = Stopwatch::started();
    ctx.collector.counter("serve.requests").inc();
    // Once the drain starts, nothing new gets in — in-flight requests
    // (already holding gate passes) finish; arrivals are shed.
    if ctx.shutdown.is_set() {
        ctx.shed("drain");
        return Outcome::error(&ServeError::ShuttingDown);
    }
    // The pass marks this request in flight until the reply is built, so
    // graceful drain waits for it.
    let _pass = ctx.gate.enter();
    let deadline = Deadline::after(ctx.request_deadline);
    let result = parse_input(&req.body)
        .and_then(|input| ctx.queue.submit(req_id, traced, input, Some(deadline)));
    let out = match result {
        Ok(reply) => {
            if ctx.shutdown.is_draining() {
                ctx.collector.counter("serve.drained").inc();
            }
            // Mark which micro-batch this request rode in on its own
            // `serve.req` lane, so the timeline reads without chasing
            // the batch instant.
            trace::async_instant_for(
                traced,
                "serve.req",
                req_id,
                &[
                    ("batch_id", reply.batch_id as f64),
                    ("fill", reply.batch as f64),
                ],
            );
            let logits: Vec<Json> = reply.logits.iter().map(|&v| Json::from(v)).collect();
            let body = Json::Obj(vec![
                ("logits".into(), Json::Arr(logits)),
                ("argmax".into(), Json::from(reply.argmax)),
                ("epoch".into(), Json::from(reply.epoch)),
                ("batch".into(), Json::from(reply.batch)),
                ("id".into(), Json::from(req_id)),
                ("batch_id".into(), Json::from(reply.batch_id)),
                ("queue_ns".into(), Json::from(reply.queue_ns)),
                ("infer_ns".into(), Json::from(reply.infer_ns)),
            ]);
            Outcome {
                epoch: Some(reply.epoch),
                batch_id: Some(reply.batch_id),
                batch_fill: Some(reply.batch),
                queue_ns: reply.queue_ns,
                infer_ns: reply.infer_ns,
                ..Outcome::json(200, body.render())
            }
        }
        Err(e) => {
            ctx.collector.counter("serve.request_failed").inc();
            match &e {
                ServeError::Overloaded => ctx.shed("queue"),
                ServeError::DeadlineExceeded => ctx.shed("deadline"),
                ServeError::ShuttingDown => ctx.shed("drain"),
                _ => {}
            }
            Outcome::error(&e)
        }
    };
    if let Some(ns) = watch.elapsed_ns() {
        ctx.collector
            .histogram("serve.request_ns")
            .record(ns as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use dropback::{TrainProgress, TrainState};
    use dropback_nn::models;
    use dropback_optim::{Optimizer, SparseDropBack};
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dropback-server-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &PathBuf) -> CheckpointStore {
        let mut store = CheckpointStore::open(dir).unwrap();
        let mut net = models::mnist_100_100(3);
        let mut opt = SparseDropBack::new(300);
        opt.step(net.store_mut(), 0.0);
        let state = TrainState::capture(
            &net,
            &opt,
            1,
            &TrainProgress {
                next_epoch: 1,
                ..TrainProgress::fresh()
            },
        );
        store.save(&state, &mut Telemetry::disabled()).unwrap();
        store
    }

    #[test]
    fn empty_directory_refuses_to_start() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        let err = Server::start(ServerConfig::default(), store).unwrap_err();
        assert!(matches!(err, ServeError::NoSnapshot(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serves_health_infer_metrics_and_shuts_down() {
        let dir = tmp_dir("roundtrip");
        let server = Server::start(ServerConfig::default(), seeded_store(&dir)).unwrap();
        let addr = server.addr();
        let mut client = HttpClient::connect(addr).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        let health = Json::parse(&health.body).unwrap();
        assert_eq!(health.get("model").unwrap().as_str(), Some("mnist-100-100"));
        assert_eq!(health.get("in_dim").unwrap().as_u64(), Some(784));

        let reply = client.infer(&vec![0.25; 784]).unwrap();
        assert_eq!(reply.logits.len(), 10);
        assert_eq!(reply.epoch, 1);

        // Unknown endpoint and wrong method are typed refusals.
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/healthz", "").unwrap().status, 405);
        // Bad JSON is a 400, not a hang or a 500.
        assert_eq!(client.post("/infer", "{oops").unwrap().status, 400);

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let metrics = Json::parse(&metrics.body).unwrap();
        assert!(
            metrics
                .get("histograms")
                .unwrap()
                .get("serve.request_ns")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_f64()
                .unwrap_or(0.0)
                > 0.0
        );

        let bye = client.post("/shutdown", "").unwrap();
        assert_eq!(bye.status, 200);
        let snap = server.wait();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert!(counter("serve.requests").is_some_and(|v| v >= 2));
        // The digest always carries the overload/drain counters, zeros
        // included — the chaos-smoke stage greps for them.
        for name in ["serve.shed", "serve.drained", "serve.drain.forced"] {
            assert!(counter(name).is_some(), "{name} missing from digest");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_speak_prometheus_when_asked() {
        let dir = tmp_dir("prom");
        let server = Server::start(ServerConfig::default(), seeded_store(&dir)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.infer(&vec![0.25; 784]).unwrap().logits.len(), 10);

        let resp = client.get("/metrics?format=prometheus").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("content-type"),
            Some("text/plain; version=0.0.4")
        );
        // The exposition carries the per-stage histograms with their
        // cumulative bucket/sum/count triple.
        for needle in [
            "# TYPE serve_request_ns histogram",
            "serve_request_ns_bucket{le=\"+Inf\"}",
            "serve_request_ns_sum",
            "serve_request_ns_count",
            "serve_queue_ns_count",
            "serve_write_ns_count",
            "serve_requests",
        ] {
            assert!(resp.body.contains(needle), "missing {needle:?}");
        }
        // The default stays JSON, and a typo'd format fails loudly.
        let json = client.get("/metrics").unwrap();
        assert_eq!(json.header("content-type"), Some("application/json"));
        assert!(Json::parse(&json.body).is_ok());
        assert_eq!(client.get("/metrics?format=xml").unwrap().status, 400);

        server.stop();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flightrec_endpoint_serves_a_chrome_trace_of_recent_requests() {
        let dir = tmp_dir("flightrec");
        let dump = dir.join("flight.json");
        let cfg = ServerConfig {
            // Arming the dump path also arms the recorder ring.
            flightrec_dump: Some(dump),
            ..ServerConfig::default()
        };
        let server = Server::start(cfg, seeded_store(&dir)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.infer(&vec![0.25; 784]).unwrap().logits.len(), 10);

        let resp = client.get("/debug/flightrec").unwrap();
        assert_eq!(resp.status, 200);
        let body = Json::parse(&resp.body).unwrap();
        let events = body
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("dump is a Chrome trace document");
        // The /infer request's queue lane went through the ring; the
        // dump may demote lanes still open at capture time, but the
        // completed queue lane must be visible.
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("serve.queue")),
            "no serve.queue events in {} records",
            events.len()
        );
        server.stop();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_drain_dumps_the_flight_recorder_ring() {
        let dir = tmp_dir("forcedump");
        let dump = dir.join("forced.json");
        let cfg = ServerConfig {
            flightrec_dump: Some(dump.clone()),
            // A batch that never fills and a flush far beyond the test's
            // patience: the request below stays queued until the drain
            // gives up on it.
            batch: BatchConfig {
                max_batch: 64,
                flush: Duration::from_secs(30),
                queue_cap: 64,
            },
            request_deadline: Duration::from_secs(30),
            drain: Duration::from_millis(50),
            ..ServerConfig::default()
        };
        let server = Server::start(cfg, seeded_store(&dir)).unwrap();
        let addr = server.addr();
        let stuck = rt::spawn("stuck", move || {
            let mut client = HttpClient::connect(addr).unwrap();
            // Shed with 503 when the forced drain refuses the queue.
            let _ = client.post("/infer", &crate::client::infer_body(&vec![0.5; 784]));
        })
        .unwrap();
        // Wait until the request is actually in flight (holding a gate
        // pass) before pulling the plug.
        for _ in 0..200 {
            let in_flight = TelemetrySnapshot::capture(server.collector())
                .counters
                .iter()
                .any(|(n, v)| n == "serve.requests" && *v >= 1);
            if in_flight {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = server.stop();
        stuck.join().unwrap();
        let forced = snap
            .counters
            .iter()
            .find(|(n, _)| n == "serve.drain.forced")
            .map_or(0, |(_, v)| *v);
        assert!(forced >= 1, "the stuck request was not force-drained");
        let text = fs::read_to_string(&dump).expect("forced drain wrote the dump");
        let parsed = Json::parse(&text).expect("dump is valid JSON");
        assert!(parsed.get("traceEvents").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn access_log_lands_one_parseable_record_per_request() {
        let dir = tmp_dir("accesslog");
        let log_path = dir.join("access.jsonl");
        let cfg = ServerConfig {
            access_log: Some(log_path.clone()),
            ..ServerConfig::default()
        };
        let server = Server::start(cfg, seeded_store(&dir)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.infer(&vec![0.25; 784]).unwrap().logits.len(), 10);
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        assert_eq!(client.post("/infer", "{oops").unwrap().status, 400);
        assert_eq!(client.get("/nope").unwrap().status, 404);

        // Handlers log after replying, so the last record may land a
        // beat after the client read its response.
        let mut lines: Vec<String> = Vec::new();
        for _ in 0..200 {
            lines = fs::read_to_string(&log_path)
                .unwrap_or_default()
                .lines()
                .map(str::to_string)
                .collect();
            if lines.len() >= 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(lines.len(), 4, "one record per request");

        let records: Vec<Json> = lines
            .iter()
            .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
            .collect();
        let field = |r: &Json, k: &str| r.get(k).and_then(Json::as_u64);
        let mut ids = Vec::new();
        for r in &records {
            let id = field(r, "id").expect("every record has an id");
            assert!(id > 0, "request ids start at 1");
            ids.push(id);
            assert!(field(r, "conn").is_some_and(|c| c > 0));
            assert!(r.get("method").and_then(Json::as_str).is_some());
            assert!(field(r, "status").is_some());
        }
        ids.dedup();
        assert_eq!(ids.len(), 4, "ids are unique and monotone");

        // The /infer success carries batch identity and stage timings;
        // the 400 carries its refusal slug.
        let infer_rec = records
            .iter()
            .find(|r| {
                field(r, "status") == Some(200)
                    && r.get("target").and_then(Json::as_str) == Some("/infer")
            })
            .expect("the successful /infer was logged");
        assert!(field(infer_rec, "batch_id").is_some_and(|b| b > 0));
        assert!(field(infer_rec, "infer_ns").is_some_and(|ns| ns > 0));
        assert!(field(infer_rec, "write_ns").is_some());
        let bad = records
            .iter()
            .find(|r| field(r, "status") == Some(400))
            .expect("the bad request was logged");
        assert_eq!(
            bad.get("reason").and_then(Json::as_str),
            Some("bad-request")
        );
        let missing = records
            .iter()
            .find(|r| field(r, "status") == Some(404))
            .expect("the unknown endpoint was logged");
        assert_eq!(
            missing.get("reason").and_then(Json::as_str),
            Some("not-found")
        );

        server.stop();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_retry_after() {
        let dir = tmp_dir("conncap");
        let cfg = ServerConfig {
            max_conns: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(cfg, seeded_store(&dir)).unwrap();
        let addr = server.addr();

        // The first connection holds the only slot...
        let mut held = HttpClient::connect(addr).unwrap();
        assert_eq!(held.get("/healthz").unwrap().status, 200);
        // ...so the second is shed at the accept loop with a hint.
        let mut shed = HttpClient::connect(addr).unwrap();
        let reply = shed.get("/healthz").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));

        // The held connection still works: shedding is per-connection.
        assert_eq!(held.get("/healthz").unwrap().status, 200);
        drop(held);
        drop(shed);
        let snap = server.stop();
        let shed_conns = snap
            .counters
            .iter()
            .find(|(n, _)| n == "serve.shed.conn")
            .map(|(_, v)| *v);
        assert!(shed_conns.is_some_and(|v| v >= 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_server_sheds_new_requests_and_finishes_the_digest() {
        let dir = tmp_dir("drain");
        let server = Server::start(ServerConfig::default(), seeded_store(&dir)).unwrap();
        let addr = server.addr();
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.infer(&vec![0.5; 784]).unwrap().logits.len(), 10);

        // Start the drain, then send another request on the same
        // keep-alive connection: it must be shed, not evaluated.
        server.trigger_shutdown();
        let reply = client.post("/infer", "{\"input\":[0.5]}").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));

        let snap = server.stop();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(counter("serve.shed.drain") >= 1);
        assert_eq!(counter("serve.drain.forced"), 0, "nothing was in flight");
        let _ = fs::remove_dir_all(&dir);
    }
}
