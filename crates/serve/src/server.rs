//! The server: accept loop, request routing, and lifecycle.
//!
//! Four endpoints, all JSON:
//!
//! | endpoint | answers |
//! |---|---|
//! | `GET /healthz` | serving generation: model, epoch, dims, source |
//! | `POST /infer` | `{"input":[...]}` → logits via the micro-batcher |
//! | `GET /metrics` | the full telemetry snapshot (`serve.*` and all) |
//! | `POST /shutdown` | acknowledges, then winds the server down |
//!
//! Threads: one accept loop, one handler per connection (keep-alive), one
//! batch worker, one snapshot watcher — all spawned through [`crate::rt`]
//! and all torn down by [`Server::stop`] / [`Server::wait`]. Batched
//! forwards run on the tensor worker pool, so `DROPBACK_THREADS` governs
//! compute parallelism independently of connection count.

use crate::batch::{BatchConfig, BatchQueue};
use crate::error::ServeError;
use crate::http::{self, Request};
use crate::model::{ModelSlot, ServingModel};
use crate::rt::{self, Shutdown};
use crate::watcher;
use dropback::CheckpointStore;
use dropback_telemetry::{Collector, Json, Span, Stopwatch, Telemetry, TelemetrySnapshot};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Everything tunable about a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`] for the resolved one).
    pub addr: String,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// How often the watcher polls the snapshot directory.
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            poll: Duration::from_millis(50),
        }
    }
}

/// Shared state every connection handler needs.
struct Ctx {
    slot: Arc<ModelSlot>,
    queue: Arc<BatchQueue>,
    collector: Arc<Collector>,
    shutdown: Arc<Shutdown>,
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::stop`] (tests, benches) or [`Server::wait`] (the bin).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    slot: Arc<ModelSlot>,
    collector: Arc<Collector>,
    shutdown: Arc<Shutdown>,
    queue: Arc<BatchQueue>,
    handles: Vec<rt::JoinHandle>,
}

impl Server {
    /// Loads the newest valid snapshot from `store`, binds the listener,
    /// and starts the accept loop, batch worker, and hot-swap watcher.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSnapshot`] when the directory holds nothing
    /// loadable, plus model-building and socket errors.
    pub fn start(cfg: ServerConfig, mut store: CheckpointStore) -> Result<Self, ServeError> {
        let collector = Arc::new(Collector::new());
        let mut tel = Telemetry::disabled();
        let state = store
            .load_latest(&mut tel)?
            .ok_or_else(|| ServeError::NoSnapshot(store.dir().to_path_buf()))?;
        collector
            .counter("serve.swap_rejected")
            .add(store.take_skipped().len() as u64);

        // The store names snapshots state-{epoch:08}.dbk2, so the loaded
        // state's epoch identifies its source file.
        let source = store
            .dir()
            .join(format!("state-{:08}.dbk2", state.progress.next_epoch));
        let model = ServingModel::from_state(&state, source.clone())?;
        collector
            .gauge("serve.model_epoch")
            .set(model.epoch() as f64);
        let slot = Arc::new(ModelSlot::new(model));

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(Shutdown::new());
        let queue = Arc::new(BatchQueue::new(cfg.batch));

        let mut handles = Vec::new();
        handles.push(queue.start_worker(Arc::clone(&slot), Arc::clone(&collector))?);
        handles.push(watcher::start(
            store,
            source,
            Arc::clone(&slot),
            Arc::clone(&collector),
            Arc::clone(&shutdown),
            cfg.poll,
        )?);

        let ctx = Arc::new(Ctx {
            slot: Arc::clone(&slot),
            queue: Arc::clone(&queue),
            collector: Arc::clone(&collector),
            shutdown: Arc::clone(&shutdown),
        });
        let accept_shutdown = Arc::clone(&shutdown);
        handles.push(rt::spawn("accept", move || {
            accept_loop(&listener, &ctx, &accept_shutdown);
        })?);

        Ok(Self {
            addr,
            slot,
            collector,
            shutdown,
            queue,
            handles,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently answering requests.
    pub fn model(&self) -> Arc<ServingModel> {
        self.slot.get()
    }

    /// The server's metrics registry (`serve.*` counters live here).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Triggers shutdown remotely-equivalent to `POST /shutdown`.
    pub fn trigger_shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until something triggers shutdown (`POST /shutdown`,
    /// [`Server::trigger_shutdown`]), then tears the threads down and
    /// returns the final telemetry snapshot.
    pub fn wait(self) -> TelemetrySnapshot {
        while !self.shutdown.wait_for(Duration::from_millis(500)) {}
        self.teardown()
    }

    /// Stops the server now and returns the final telemetry snapshot.
    pub fn stop(self) -> TelemetrySnapshot {
        self.shutdown.trigger();
        self.teardown()
    }

    fn teardown(self) -> TelemetrySnapshot {
        self.queue.stop();
        // The accept loop is blocked in accept(); poke it awake so it
        // observes the tripped latch and exits.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        for h in self.handles {
            let _ = h.join();
        }
        TelemetrySnapshot::capture(&self.collector)
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, shutdown: &Shutdown) {
    loop {
        let conn = listener.accept();
        if shutdown.is_set() {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                let ctx = Arc::clone(ctx);
                ctx.collector.counter("serve.connections").inc();
                if rt::spawn("conn", move || handle_connection(stream, &ctx)).is_err() {
                    // Thread exhaustion: the connection drops; the client
                    // retries. Nothing else to do without a thread.
                }
            }
            Err(_) => {
                ctx.collector.counter("serve.accept_errors").inc();
            }
        }
    }
}

/// Serves one keep-alive connection until the peer closes, asks to
/// close, sends garbage, or shutdown trips.
fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    // Responses are small and latency-bound; never let them sit in
    // Nagle's buffer waiting for the client's ACK.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(e) => {
                let status = e.http_status();
                let body = error_body(&e);
                let _ = http::write_response(&mut write_half, status, &body);
                return;
            }
        };
        let close = req.wants_close();
        let (status, body) = route(&req, ctx);
        if http::write_response(&mut write_half, status, &body).is_err() {
            return;
        }
        if close || ctx.shutdown.is_set() {
            return;
        }
    }
}

fn error_body(e: &ServeError) -> String {
    Json::Obj(vec![("error".into(), Json::from(e.to_string()))]).render()
}

fn route(req: &Request, ctx: &Ctx) -> (u16, String) {
    let _span = Span::enter("serve.request");
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => healthz(ctx),
        ("POST", "/infer") => infer(req, ctx),
        ("GET", "/metrics") => (
            200,
            TelemetrySnapshot::capture(&ctx.collector)
                .to_json()
                .render(),
        ),
        ("POST", "/shutdown") => {
            ctx.shutdown.trigger();
            (
                200,
                Json::Obj(vec![("status".into(), Json::from("shutting-down"))]).render(),
            )
        }
        (_, "/healthz" | "/infer" | "/metrics" | "/shutdown") => (
            405,
            error_body(&ServeError::BadRequest(format!(
                "method {} not allowed on {}",
                req.method, req.target
            ))),
        ),
        _ => (
            404,
            error_body(&ServeError::BadRequest(format!(
                "no such endpoint {:?} (have /healthz, /infer, /metrics, /shutdown)",
                req.target
            ))),
        ),
    }
}

fn healthz(ctx: &Ctx) -> (u16, String) {
    let m = ctx.slot.get();
    let body = Json::Obj(vec![
        ("status".into(), Json::from("ok")),
        ("model".into(), Json::from(m.name())),
        ("epoch".into(), Json::from(m.epoch())),
        ("in_dim".into(), Json::from(m.in_dim())),
        ("out_dim".into(), Json::from(m.out_dim())),
        ("entries".into(), Json::from(m.entries())),
        (
            "source".into(),
            Json::from(m.source().to_string_lossy().as_ref()),
        ),
    ]);
    (200, body.render())
}

fn parse_input(body: &[u8]) -> Result<Vec<f32>, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    let json = Json::parse(text).map_err(|e| ServeError::BadRequest(format!("bad JSON: {e}")))?;
    let arr = json
        .get("input")
        .and_then(Json::as_array)
        .ok_or_else(|| ServeError::BadRequest("expected {\"input\": [numbers]}".into()))?;
    let mut input = Vec::with_capacity(arr.len());
    for (i, v) in arr.iter().enumerate() {
        let f = v
            .as_f64()
            .ok_or_else(|| ServeError::BadRequest(format!("input[{i}] is not a number")))?;
        // f32 values render exactly into JSON and cast back exactly, so
        // the wire preserves input bits end to end.
        input.push(f as f32);
    }
    Ok(input)
}

fn infer(req: &Request, ctx: &Ctx) -> (u16, String) {
    let watch = Stopwatch::started();
    ctx.collector.counter("serve.requests").inc();
    let result = parse_input(&req.body).and_then(|input| ctx.queue.submit(input));
    let (status, body) = match result {
        Ok(reply) => {
            let logits: Vec<Json> = reply.logits.iter().map(|&v| Json::from(v)).collect();
            let body = Json::Obj(vec![
                ("logits".into(), Json::Arr(logits)),
                ("argmax".into(), Json::from(reply.argmax)),
                ("epoch".into(), Json::from(reply.epoch)),
                ("batch".into(), Json::from(reply.batch)),
            ]);
            (200, body.render())
        }
        Err(e) => {
            ctx.collector.counter("serve.request_failed").inc();
            (e.http_status(), error_body(&e))
        }
    };
    if let Some(ns) = watch.elapsed_ns() {
        ctx.collector
            .histogram("serve.request_ns")
            .record(ns as f64);
    }
    (status, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use dropback::{TrainProgress, TrainState};
    use dropback_nn::models;
    use dropback_optim::{Optimizer, SparseDropBack};
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dropback-server-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &PathBuf) -> CheckpointStore {
        let mut store = CheckpointStore::open(dir).unwrap();
        let mut net = models::mnist_100_100(3);
        let mut opt = SparseDropBack::new(300);
        opt.step(net.store_mut(), 0.0);
        let state = TrainState::capture(
            &net,
            &opt,
            1,
            &TrainProgress {
                next_epoch: 1,
                ..TrainProgress::fresh()
            },
        );
        store.save(&state, &mut Telemetry::disabled()).unwrap();
        store
    }

    #[test]
    fn empty_directory_refuses_to_start() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        let err = Server::start(ServerConfig::default(), store).unwrap_err();
        assert!(matches!(err, ServeError::NoSnapshot(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serves_health_infer_metrics_and_shuts_down() {
        let dir = tmp_dir("roundtrip");
        let server = Server::start(ServerConfig::default(), seeded_store(&dir)).unwrap();
        let addr = server.addr();
        let mut client = HttpClient::connect(addr).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        let health = Json::parse(&health.body).unwrap();
        assert_eq!(health.get("model").unwrap().as_str(), Some("mnist-100-100"));
        assert_eq!(health.get("in_dim").unwrap().as_u64(), Some(784));

        let reply = client.infer(&vec![0.25; 784]).unwrap();
        assert_eq!(reply.logits.len(), 10);
        assert_eq!(reply.epoch, 1);

        // Unknown endpoint and wrong method are typed refusals.
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/healthz", "").unwrap().status, 405);
        // Bad JSON is a 400, not a hang or a 500.
        assert_eq!(client.post("/infer", "{oops").unwrap().status, 400);

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let metrics = Json::parse(&metrics.body).unwrap();
        assert!(
            metrics
                .get("histograms")
                .unwrap()
                .get("serve.request_ns")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_f64()
                .unwrap_or(0.0)
                > 0.0
        );

        let bye = client.post("/shutdown", "").unwrap();
        assert_eq!(bye.status, 200);
        let snap = server.wait();
        let requests = snap
            .counters
            .iter()
            .find(|(n, _)| n == "serve.requests")
            .map(|(_, v)| *v);
        assert!(requests.is_some_and(|v| v >= 2));
        let _ = fs::remove_dir_all(&dir);
    }
}
