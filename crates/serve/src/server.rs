//! The server: accept loop, request routing, and lifecycle.
//!
//! Four endpoints, all JSON:
//!
//! | endpoint | answers |
//! |---|---|
//! | `GET /healthz` | serving generation: model, epoch, dims, source |
//! | `POST /infer` | `{"input":[...]}` → logits via the micro-batcher |
//! | `GET /metrics` | the full telemetry snapshot (`serve.*` and all) |
//! | `POST /shutdown` | acknowledges, then winds the server down |
//!
//! Threads: one accept loop, one handler per connection (keep-alive), one
//! batch worker, one snapshot watcher — all spawned through [`crate::rt`]
//! and all torn down by [`Server::stop`] / [`Server::wait`]. Batched
//! forwards run on the tensor worker pool, so `DROPBACK_THREADS` governs
//! compute parallelism independently of connection count.
//!
//! # Overload behavior
//!
//! The server defends itself at three rings, each counted under
//! `serve.shed.*` (see `docs/SERVING.md`):
//!
//! 1. **Connections** — at most [`ServerConfig::max_conns`] concurrent
//!    connections; excess ones are answered `503` + `Retry-After` and
//!    closed instead of spawning a handler.
//! 2. **Queue depth** — the batch queue refuses past
//!    [`BatchConfig::queue_cap`] (`503`).
//! 3. **Deadlines** — each `/infer` carries a
//!    [`ServerConfig::request_deadline`]; requests that expire while
//!    queued are shed *before* inference, and socket I/O is bounded by
//!    [`ServerConfig::io_timeout`] so a slow-loris client costs one
//!    handler for a bounded time (`serve.timeout.{read,write}`).
//!
//! Shutdown is a two-phase drain: stop admitting, let in-flight requests
//! finish inside [`ServerConfig::drain`], then force-close whatever is
//! left (`serve.drained` / `serve.drain.forced` in the final digest).

use crate::batch::{BatchConfig, BatchQueue};
use crate::clock::Deadline;
use crate::error::ServeError;
use crate::http::{self, Request};
use crate::model::{ModelSlot, ServingModel};
use crate::rt::{self, ChaosHook, Gate, Limiter, Shutdown};
use crate::watcher;
use dropback::{CheckpointStore, FaultAction, FaultStream};
use dropback_telemetry::{Collector, Json, Span, Stopwatch, Telemetry, TelemetrySnapshot};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Everything tunable about a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`] for the resolved one).
    pub addr: String,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// How often the watcher polls the snapshot directory.
    pub poll: Duration,
    /// Most concurrent connections admitted; excess ones are shed with
    /// `503` + `Retry-After` at the accept loop.
    pub max_conns: usize,
    /// Socket read/write timeout per connection — the slow-loris bound.
    pub io_timeout: Duration,
    /// Deadline each `/infer` request carries through the batch queue;
    /// requests older than this are shed unevaluated.
    pub request_deadline: Duration,
    /// How long graceful shutdown waits for in-flight requests before
    /// force-closing them.
    pub drain: Duration,
    /// The `Retry-After` hint attached to every shedding `503`.
    pub retry_after: Duration,
    /// Test-only fault injection: every accepted connection's socket is
    /// wrapped in a [`FaultStream`] applying the hook's next planned
    /// action. Production configs leave this `None`.
    pub chaos: Option<Arc<ChaosHook>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            poll: Duration::from_millis(50),
            max_conns: 256,
            io_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(2),
            drain: Duration::from_secs(2),
            retry_after: Duration::from_secs(1),
            chaos: None,
        }
    }
}

/// Shared state every connection handler needs.
struct Ctx {
    slot: Arc<ModelSlot>,
    queue: Arc<BatchQueue>,
    collector: Arc<Collector>,
    shutdown: Arc<Shutdown>,
    gate: Arc<Gate>,
    limiter: Arc<Limiter>,
    chaos: Option<Arc<ChaosHook>>,
    io_timeout: Duration,
    request_deadline: Duration,
    /// Pre-rendered `Retry-After` value (whole seconds, at least 1).
    retry_after: String,
}

impl Ctx {
    fn shed(&self, ring: &str) {
        self.collector.counter("serve.shed").inc();
        self.collector.counter(&format!("serve.shed.{ring}")).inc();
    }
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::stop`] (tests, benches) or [`Server::wait`] (the bin).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    slot: Arc<ModelSlot>,
    collector: Arc<Collector>,
    shutdown: Arc<Shutdown>,
    queue: Arc<BatchQueue>,
    gate: Arc<Gate>,
    drain: Duration,
    handles: Vec<rt::JoinHandle>,
}

impl Server {
    /// Loads the newest valid snapshot from `store`, binds the listener,
    /// and starts the accept loop, batch worker, and hot-swap watcher.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSnapshot`] when the directory holds nothing
    /// loadable, plus model-building and socket errors.
    pub fn start(cfg: ServerConfig, mut store: CheckpointStore) -> Result<Self, ServeError> {
        let collector = Arc::new(Collector::new());
        let mut tel = Telemetry::disabled();
        let state = store
            .load_latest(&mut tel)?
            .ok_or_else(|| ServeError::NoSnapshot(store.dir().to_path_buf()))?;
        collector
            .counter("serve.swap_rejected")
            .add(store.take_skipped().len() as u64);
        // Register the overload/drain counters up front so every digest
        // carries them, zeros included — dashboards and the chaos-smoke
        // stage grep for them unconditionally.
        for name in [
            "serve.shed",
            "serve.drained",
            "serve.drain.forced",
            "serve.timeout.read",
            "serve.timeout.write",
        ] {
            collector.counter(name).add(0);
        }

        // The store names snapshots state-{epoch:08}.dbk2, so the loaded
        // state's epoch identifies its source file.
        let source = store
            .dir()
            .join(format!("state-{:08}.dbk2", state.progress.next_epoch));
        let model = ServingModel::from_state(&state, source.clone())?;
        collector
            .gauge("serve.model_epoch")
            .set(model.epoch() as f64);
        let slot = Arc::new(ModelSlot::new(model));

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(Shutdown::new());
        let queue = Arc::new(BatchQueue::new(cfg.batch));
        let gate = Arc::new(Gate::new());

        let mut handles = Vec::new();
        handles.push(queue.start_worker(Arc::clone(&slot), Arc::clone(&collector))?);
        handles.push(watcher::start(
            store,
            source,
            Arc::clone(&slot),
            Arc::clone(&collector),
            Arc::clone(&shutdown),
            cfg.poll,
        )?);

        let ctx = Arc::new(Ctx {
            slot: Arc::clone(&slot),
            queue: Arc::clone(&queue),
            collector: Arc::clone(&collector),
            shutdown: Arc::clone(&shutdown),
            gate: Arc::clone(&gate),
            limiter: Arc::new(Limiter::new(cfg.max_conns.max(1))),
            chaos: cfg.chaos.clone(),
            io_timeout: cfg.io_timeout,
            request_deadline: cfg.request_deadline,
            retry_after: cfg.retry_after.as_secs().max(1).to_string(),
        });
        let accept_shutdown = Arc::clone(&shutdown);
        handles.push(rt::spawn("accept", move || {
            accept_loop(&listener, &ctx, &accept_shutdown);
        })?);

        Ok(Self {
            addr,
            slot,
            collector,
            shutdown,
            queue,
            gate,
            drain: cfg.drain,
            handles,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The generation currently answering requests.
    pub fn model(&self) -> Arc<ServingModel> {
        self.slot.get()
    }

    /// The server's metrics registry (`serve.*` counters live here).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Triggers shutdown remotely-equivalent to `POST /shutdown`.
    pub fn trigger_shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until something triggers shutdown (`POST /shutdown`,
    /// [`Server::trigger_shutdown`]), then drains and tears the threads
    /// down and returns the final telemetry snapshot.
    pub fn wait(self) -> TelemetrySnapshot {
        while !self.shutdown.wait_for(Duration::from_millis(500)) {}
        self.teardown()
    }

    /// Stops the server now (graceful drain included) and returns the
    /// final telemetry snapshot.
    pub fn stop(self) -> TelemetrySnapshot {
        self.shutdown.trigger();
        self.teardown()
    }

    /// Two-phase wind-down: stop admitting, drain in-flight requests
    /// within the drain deadline, then force-close the stragglers.
    fn teardown(self) -> TelemetrySnapshot {
        // Phase 1: stop admitting. New /infer requests are shed with 503
        // from here on; connections are still *accepted* so the refusal
        // is a typed response, not a vanished socket.
        self.shutdown.trigger();
        // Phase 2: drain. In-flight requests hold gate passes; the batch
        // worker is still running, so they complete normally — we just
        // bound how long that may take.
        self.gate.wait_idle_within(self.drain);
        // Phase 3: force. Whatever is still in flight is out of time:
        // refuse everything left in the queue (their handlers answer 503)
        // and stop the worker. The accept loop is blocked in accept();
        // poke it awake so it observes the stop and exits.
        self.collector
            .counter("serve.drain.forced")
            .add(self.gate.active() as u64);
        self.queue.stop();
        self.shutdown.force();
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        for h in self.handles {
            let _ = h.join();
        }
        TelemetrySnapshot::capture(&self.collector)
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, shutdown: &Shutdown) {
    loop {
        let conn = listener.accept();
        // Keep accepting while *draining* — late arrivals deserve a typed
        // 503, not a vanished socket. Only a full stop ends the loop.
        if shutdown.is_stopped() {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                ctx.collector.counter("serve.connections").inc();
                // Admission control: over the cap, the connection is
                // answered 503 + Retry-After right here — no handler
                // thread, no queue slot.
                let Some(permit) = ctx.limiter.try_acquire() else {
                    shed_connection(stream, ctx);
                    continue;
                };
                let action = ctx
                    .chaos
                    .as_ref()
                    .map_or(FaultAction::None, |hook| hook.next_action());
                let ctx = Arc::clone(ctx);
                if rt::spawn("conn", move || {
                    // The permit rides the handler thread; dropping it on
                    // any exit path frees the connection slot.
                    let _permit = permit;
                    handle_connection(stream, action, &ctx);
                })
                .is_err()
                {
                    // Thread exhaustion: the connection drops; the client
                    // retries. Nothing else to do without a thread.
                }
            }
            Err(_) => {
                ctx.collector.counter("serve.accept_errors").inc();
            }
        }
    }
}

/// Refuses one over-cap connection with `503` + `Retry-After` without
/// spawning a handler for it.
fn shed_connection(stream: TcpStream, ctx: &Ctx) {
    ctx.shed("conn");
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    // Bound the refusal write too: the accept loop must never block on a
    // peer that connected and went away.
    let _ = stream.set_write_timeout(Some(ctx.io_timeout));
    let _ = respond(&mut stream, 503, &error_body(&ServeError::Overloaded), ctx);
}

/// Writes one response, attaching `Retry-After` to every shedding 503.
fn respond(w: &mut impl Write, status: u16, body: &str, ctx: &Ctx) -> std::io::Result<()> {
    if status == 503 {
        http::write_response_with(w, status, &[("Retry-After", ctx.retry_after.clone())], body)
    } else {
        http::write_response(w, status, body)
    }
}

/// Whether an error is the socket timing out (the slow-loris bound
/// firing) rather than the peer misbehaving at the protocol level.
/// Platforms disagree on the kind a timed-out socket read reports, so
/// both are checked.
fn is_timeout_kind(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

fn is_read_timeout(e: &ServeError) -> bool {
    matches!(e, ServeError::Io(io) if is_timeout_kind(io.kind()))
}

/// Applies socket options, wires in the chaos wrapper when armed, and
/// hands the stream to the generic keep-alive loop.
fn handle_connection(stream: TcpStream, action: FaultAction, ctx: &Ctx) {
    // Responses are small and latency-bound; never let them sit in
    // Nagle's buffer waiting for the client's ACK. The read/write
    // timeouts are the slow-loris bound: a peer that stops moving bytes
    // costs this handler at most io_timeout before the connection dies.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.io_timeout));
    let _ = stream.set_write_timeout(Some(ctx.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if action == FaultAction::None {
        serve_connection(BufReader::new(read_half), stream, ctx);
    } else {
        // Each half keeps its own fault position; the same action on
        // both models one misbehaving peer.
        serve_connection(
            BufReader::new(FaultStream::new(read_half, action)),
            FaultStream::new(stream, action),
            ctx,
        );
    }
}

/// Serves one keep-alive connection until the peer closes, asks to
/// close, sends garbage, times out, or shutdown trips. Generic over the
/// stream halves so the chaos suite can interpose [`FaultStream`]s.
fn serve_connection(mut reader: impl BufRead, mut writer: impl Write, ctx: &Ctx) {
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(e) => {
                if is_read_timeout(&e) {
                    // A stalled client, not a protocol error: there is
                    // nobody attentive to answer, so just hang up.
                    ctx.collector.counter("serve.timeout.read").inc();
                    return;
                }
                let status = e.http_status();
                let body = error_body(&e);
                let _ = respond(&mut writer, status, &body, ctx);
                return;
            }
        };
        let close = req.wants_close();
        let (status, body) = route(&req, ctx);
        if let Err(e) = respond(&mut writer, status, &body, ctx) {
            if is_timeout_kind(e.kind()) {
                ctx.collector.counter("serve.timeout.write").inc();
            }
            return;
        }
        if close || ctx.shutdown.is_set() {
            return;
        }
    }
}

fn error_body(e: &ServeError) -> String {
    Json::Obj(vec![("error".into(), Json::from(e.to_string()))]).render()
}

fn route(req: &Request, ctx: &Ctx) -> (u16, String) {
    let _span = Span::enter("serve.request");
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => healthz(ctx),
        ("POST", "/infer") => infer(req, ctx),
        ("GET", "/metrics") => (
            200,
            TelemetrySnapshot::capture(&ctx.collector)
                .to_json()
                .render(),
        ),
        ("POST", "/shutdown") => {
            ctx.shutdown.trigger();
            (
                200,
                Json::Obj(vec![("status".into(), Json::from("shutting-down"))]).render(),
            )
        }
        (_, "/healthz" | "/infer" | "/metrics" | "/shutdown") => (
            405,
            error_body(&ServeError::BadRequest(format!(
                "method {} not allowed on {}",
                req.method, req.target
            ))),
        ),
        _ => (
            404,
            error_body(&ServeError::BadRequest(format!(
                "no such endpoint {:?} (have /healthz, /infer, /metrics, /shutdown)",
                req.target
            ))),
        ),
    }
}

fn healthz(ctx: &Ctx) -> (u16, String) {
    let m = ctx.slot.get();
    let body = Json::Obj(vec![
        ("status".into(), Json::from("ok")),
        ("model".into(), Json::from(m.name())),
        ("epoch".into(), Json::from(m.epoch())),
        ("in_dim".into(), Json::from(m.in_dim())),
        ("out_dim".into(), Json::from(m.out_dim())),
        ("entries".into(), Json::from(m.entries())),
        (
            "source".into(),
            Json::from(m.source().to_string_lossy().as_ref()),
        ),
    ]);
    (200, body.render())
}

fn parse_input(body: &[u8]) -> Result<Vec<f32>, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    let json = Json::parse(text).map_err(|e| ServeError::BadRequest(format!("bad JSON: {e}")))?;
    let arr = json
        .get("input")
        .and_then(Json::as_array)
        .ok_or_else(|| ServeError::BadRequest("expected {\"input\": [numbers]}".into()))?;
    let mut input = Vec::with_capacity(arr.len());
    for (i, v) in arr.iter().enumerate() {
        let f = v
            .as_f64()
            .ok_or_else(|| ServeError::BadRequest(format!("input[{i}] is not a number")))?;
        // f32 values render exactly into JSON and cast back exactly, so
        // the wire preserves input bits end to end.
        input.push(f as f32);
    }
    Ok(input)
}

fn infer(req: &Request, ctx: &Ctx) -> (u16, String) {
    let watch = Stopwatch::started();
    ctx.collector.counter("serve.requests").inc();
    // Once the drain starts, nothing new gets in — in-flight requests
    // (already holding gate passes) finish; arrivals are shed.
    if ctx.shutdown.is_set() {
        ctx.shed("drain");
        return (503, error_body(&ServeError::ShuttingDown));
    }
    // The pass marks this request in flight until the reply is built, so
    // graceful drain waits for it.
    let _pass = ctx.gate.enter();
    let deadline = Deadline::after(ctx.request_deadline);
    let result = parse_input(&req.body).and_then(|input| ctx.queue.submit(input, Some(deadline)));
    let (status, body) = match result {
        Ok(reply) => {
            if ctx.shutdown.is_draining() {
                ctx.collector.counter("serve.drained").inc();
            }
            let logits: Vec<Json> = reply.logits.iter().map(|&v| Json::from(v)).collect();
            let body = Json::Obj(vec![
                ("logits".into(), Json::Arr(logits)),
                ("argmax".into(), Json::from(reply.argmax)),
                ("epoch".into(), Json::from(reply.epoch)),
                ("batch".into(), Json::from(reply.batch)),
            ]);
            (200, body.render())
        }
        Err(e) => {
            ctx.collector.counter("serve.request_failed").inc();
            match &e {
                ServeError::Overloaded => ctx.shed("queue"),
                ServeError::DeadlineExceeded => ctx.shed("deadline"),
                ServeError::ShuttingDown => ctx.shed("drain"),
                _ => {}
            }
            (e.http_status(), error_body(&e))
        }
    };
    if let Some(ns) = watch.elapsed_ns() {
        ctx.collector
            .histogram("serve.request_ns")
            .record(ns as f64);
    }
    (status, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use dropback::{TrainProgress, TrainState};
    use dropback_nn::models;
    use dropback_optim::{Optimizer, SparseDropBack};
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dropback-server-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &PathBuf) -> CheckpointStore {
        let mut store = CheckpointStore::open(dir).unwrap();
        let mut net = models::mnist_100_100(3);
        let mut opt = SparseDropBack::new(300);
        opt.step(net.store_mut(), 0.0);
        let state = TrainState::capture(
            &net,
            &opt,
            1,
            &TrainProgress {
                next_epoch: 1,
                ..TrainProgress::fresh()
            },
        );
        store.save(&state, &mut Telemetry::disabled()).unwrap();
        store
    }

    #[test]
    fn empty_directory_refuses_to_start() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        let err = Server::start(ServerConfig::default(), store).unwrap_err();
        assert!(matches!(err, ServeError::NoSnapshot(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serves_health_infer_metrics_and_shuts_down() {
        let dir = tmp_dir("roundtrip");
        let server = Server::start(ServerConfig::default(), seeded_store(&dir)).unwrap();
        let addr = server.addr();
        let mut client = HttpClient::connect(addr).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        let health = Json::parse(&health.body).unwrap();
        assert_eq!(health.get("model").unwrap().as_str(), Some("mnist-100-100"));
        assert_eq!(health.get("in_dim").unwrap().as_u64(), Some(784));

        let reply = client.infer(&vec![0.25; 784]).unwrap();
        assert_eq!(reply.logits.len(), 10);
        assert_eq!(reply.epoch, 1);

        // Unknown endpoint and wrong method are typed refusals.
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/healthz", "").unwrap().status, 405);
        // Bad JSON is a 400, not a hang or a 500.
        assert_eq!(client.post("/infer", "{oops").unwrap().status, 400);

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let metrics = Json::parse(&metrics.body).unwrap();
        assert!(
            metrics
                .get("histograms")
                .unwrap()
                .get("serve.request_ns")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_f64()
                .unwrap_or(0.0)
                > 0.0
        );

        let bye = client.post("/shutdown", "").unwrap();
        assert_eq!(bye.status, 200);
        let snap = server.wait();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert!(counter("serve.requests").is_some_and(|v| v >= 2));
        // The digest always carries the overload/drain counters, zeros
        // included — the chaos-smoke stage greps for them.
        for name in ["serve.shed", "serve.drained", "serve.drain.forced"] {
            assert!(counter(name).is_some(), "{name} missing from digest");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_retry_after() {
        let dir = tmp_dir("conncap");
        let cfg = ServerConfig {
            max_conns: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(cfg, seeded_store(&dir)).unwrap();
        let addr = server.addr();

        // The first connection holds the only slot...
        let mut held = HttpClient::connect(addr).unwrap();
        assert_eq!(held.get("/healthz").unwrap().status, 200);
        // ...so the second is shed at the accept loop with a hint.
        let mut shed = HttpClient::connect(addr).unwrap();
        let reply = shed.get("/healthz").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));

        // The held connection still works: shedding is per-connection.
        assert_eq!(held.get("/healthz").unwrap().status, 200);
        drop(held);
        drop(shed);
        let snap = server.stop();
        let shed_conns = snap
            .counters
            .iter()
            .find(|(n, _)| n == "serve.shed.conn")
            .map(|(_, v)| *v);
        assert!(shed_conns.is_some_and(|v| v >= 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_server_sheds_new_requests_and_finishes_the_digest() {
        let dir = tmp_dir("drain");
        let server = Server::start(ServerConfig::default(), seeded_store(&dir)).unwrap();
        let addr = server.addr();
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.infer(&vec![0.5; 784]).unwrap().logits.len(), 10);

        // Start the drain, then send another request on the same
        // keep-alive connection: it must be shed, not evaluated.
        server.trigger_shutdown();
        let reply = client.post("/infer", "{\"input\":[0.5]}").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));

        let snap = server.stop();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(counter("serve.shed.drain") >= 1);
        assert_eq!(counter("serve.drain.forced"), 0, "nothing was in flight");
        let _ = fs::remove_dir_all(&dir);
    }
}
