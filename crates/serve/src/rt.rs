//! The serve crate's concurrency runtime: its one sanctioned
//! thread-creation site and the shared-state primitives every other
//! serve module builds on.
//!
//! The `dropback-lint` `raw-thread` rule confines `thread::spawn` to the
//! tensor worker pool — compute must go through the pool so the
//! thread-count-invariance contract holds. A server, though, needs
//! *lifecycle* threads that are not compute: the accept loop, per
//! connection handlers, the batch worker, and the snapshot watcher. Those
//! all spawn through [`spawn`] here, the one serve file on the rule's
//! allowlist; batched forwards themselves still run on the worker pool.
//!
//! The companion `shared-state` rule does the same for synchronization:
//! locks, condition variables, and atomics live only in the sanctioned
//! concurrency modules, and this file is serve's. [`Monitor`] (a
//! mutex/condvar pair behind a closure API) and [`Swap`] (a read-mostly
//! `Arc` slot) are the two shapes serve needs; `batch.rs` queues on a
//! `Monitor`, `model.rs` hot-swaps through a `Swap`, and neither names a
//! lock type again. Both primitives ride out lock poisoning by taking
//! the guard anyway — a panicked serve thread must not wedge every other
//! request behind a `PoisonError`.

use crate::clock::Deadline;
use std::io;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread;
use std::time::Duration;

/// A named OS thread's join handle.
pub type JoinHandle = thread::JoinHandle<()>;

/// Spawns a named lifecycle thread. Names show up in panic messages and
/// debuggers as `serve-{name}`.
///
/// # Errors
///
/// Propagates the OS error if the thread cannot be created.
pub fn spawn<F>(name: &str, f: F) -> io::Result<JoinHandle>
where
    F: FnOnce() + Send + 'static,
{
    thread::Builder::new()
        .name(format!("serve-{name}"))
        .spawn(f)
}

/// A `Mutex<T>` + `Condvar` pair behind a closure API.
///
/// Callers never see the guard, the condvar, or a `PoisonError`; they
/// run closures under the lock ([`Monitor::with`], [`Monitor::update`])
/// and park on predicates ([`Monitor::wait_for`],
/// [`Monitor::wait_for_within`]). Predicates are re-checked after every
/// wakeup, so spurious wakeups are invisible to callers.
#[derive(Debug, Default)]
pub struct Monitor<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T> Monitor<T> {
    /// A monitor owning `value`.
    pub fn new(value: T) -> Self {
        Self {
            state: Mutex::new(value),
            cv: Condvar::new(),
        }
    }

    fn guard(&self) -> MutexGuard<'_, T> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` under the lock without waking waiters — for reads and
    /// for writes no predicate can be parked on.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.guard())
    }

    /// Runs `f` under the lock, then wakes every parked waiter so their
    /// predicates re-run against the new state.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let r = f(&mut self.guard());
        self.cv.notify_all();
        r
    }

    /// Parks until `f` answers `Some`, returning that answer. `f` runs
    /// under the lock each wakeup.
    pub fn wait_for<R>(&self, mut f: impl FnMut(&mut T) -> Option<R>) -> R {
        let mut g = self.guard();
        loop {
            if let Some(r) = f(&mut g) {
                return r;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Parks until `f` answers `Some` or `d` has elapsed, whichever
    /// comes first; `None` means the window closed with the predicate
    /// still unmet.
    pub fn wait_for_within<R>(
        &self,
        d: Duration,
        mut f: impl FnMut(&mut T) -> Option<R>,
    ) -> Option<R> {
        let deadline = Deadline::after(d);
        let mut g = self.guard();
        loop {
            if let Some(r) = f(&mut g) {
                return Some(r);
            }
            let left = deadline.remaining();
            if left == Duration::ZERO {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, left)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }
}

/// A read-mostly slot holding an `Arc<T>` that can be atomically
/// replaced — the hot-swap shape.
///
/// Readers pin the current value with [`Swap::get`] and keep using that
/// exact instance even if a [`Swap::swap`] lands immediately after;
/// later readers see the replacement. Reads take a shared lock for a
/// few instructions (one `Arc` clone), so the read path never blocks on
/// another reader.
#[derive(Debug)]
pub struct Swap<T> {
    cur: RwLock<Arc<T>>,
}

impl<T> Swap<T> {
    /// A slot holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            cur: RwLock::new(Arc::new(value)),
        }
    }

    /// The current value, pinned: the returned `Arc` stays valid across
    /// any number of subsequent swaps.
    pub fn get(&self) -> Arc<T> {
        Arc::clone(&self.cur.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically replaces the held value, returning the previous one.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        let mut cur = self.cur.write().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *cur, next)
    }
}

/// A one-way latch that tells every serve thread to wind down.
///
/// Threads either poll [`Shutdown::is_set`] between requests or park in
/// [`Shutdown::wait_for`], which doubles as an interruptible sleep: it
/// returns early (with `true`) the moment shutdown triggers, so a watcher
/// sleeping out its poll interval still exits promptly.
#[derive(Debug, Default)]
pub struct Shutdown {
    latch: Monitor<bool>,
}

impl Shutdown {
    /// A latch in the armed (not yet triggered) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the latch and wakes every parked thread.
    pub fn trigger(&self) {
        self.latch.update(|set| *set = true);
    }

    /// Whether the latch has been tripped.
    pub fn is_set(&self) -> bool {
        self.latch.with(|set| *set)
    }

    /// Sleeps up to `d`, returning `true` immediately if shutdown
    /// triggers first (or had already triggered).
    pub fn wait_for(&self, d: Duration) -> bool {
        self.latch
            .wait_for_within(d, |set| set.then_some(()))
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawned_threads_carry_the_serve_prefix() {
        let h = spawn("unit", || {
            assert_eq!(
                thread::current().name(),
                Some("serve-unit"),
                "lifecycle threads must be identifiable"
            );
        })
        .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn shutdown_interrupts_a_parked_thread() {
        let latch = Arc::new(Shutdown::new());
        let seen = Arc::clone(&latch);
        let h = spawn("latch", move || {
            // Far longer than the test will take; trigger() must cut it.
            assert!(seen.wait_for(Duration::from_secs(30)));
        })
        .unwrap();
        latch.trigger();
        h.join().unwrap();
        assert!(latch.is_set());
        // After triggering, waits return instantly.
        assert!(latch.wait_for(Duration::from_secs(30)));
    }

    #[test]
    fn monitor_wakes_a_parked_predicate() {
        let m = Arc::new(Monitor::new(0u32));
        let seen = Arc::clone(&m);
        let h = spawn("monitor", move || {
            let v = seen.wait_for(|n| (*n >= 3).then_some(*n));
            assert_eq!(v, 3);
        })
        .unwrap();
        for _ in 0..3 {
            m.update(|n| *n += 1);
        }
        h.join().unwrap();
        // `with` does not signal — reads observe without waking anyone.
        assert_eq!(m.with(|n| *n), 3);
    }

    #[test]
    fn monitor_timed_wait_gives_up_but_reports_late_success() {
        let m = Monitor::new(false);
        // Predicate never satisfied: the window closes with None.
        assert_eq!(
            m.wait_for_within(Duration::from_millis(5), |b| b.then_some(())),
            None
        );
        m.update(|b| *b = true);
        // Already satisfied: returns immediately regardless of window.
        assert_eq!(
            m.wait_for_within(Duration::from_secs(30), |b| b.then_some(1)),
            Some(1)
        );
    }

    #[test]
    fn swap_pins_readers_across_a_replacement() {
        let slot = Swap::new("old");
        let pinned = slot.get();
        let prev = slot.swap(Arc::new("new"));
        assert_eq!(*prev, "old");
        assert_eq!(*pinned, "old", "in-flight readers keep their instance");
        assert_eq!(*slot.get(), "new", "later readers see the replacement");
    }
}
