//! The serve crate's concurrency runtime: its one sanctioned
//! thread-creation site and the shared-state primitives every other
//! serve module builds on.
//!
//! The `dropback-lint` `raw-thread` rule confines `thread::spawn` to the
//! tensor worker pool — compute must go through the pool so the
//! thread-count-invariance contract holds. A server, though, needs
//! *lifecycle* threads that are not compute: the accept loop, per
//! connection handlers, the batch worker, and the snapshot watcher. Those
//! all spawn through [`spawn`] here, the one serve file on the rule's
//! allowlist; batched forwards themselves still run on the worker pool.
//!
//! The companion `shared-state` rule does the same for synchronization:
//! locks, condition variables, and atomics live only in the sanctioned
//! concurrency modules, and this file is serve's. [`Monitor`] (a
//! mutex/condvar pair behind a closure API) and [`Swap`] (a read-mostly
//! `Arc` slot) are the two base shapes; `batch.rs` queues on a
//! `Monitor`, `model.rs` hot-swaps through a `Swap`, and neither names a
//! lock type again. The overload layer builds three more primitives on
//! `Monitor`: [`Shutdown`] (the two-phase running → draining → stopped
//! latch), [`Gate`] (in-flight request counting for graceful drain), and
//! [`Limiter`] (the connection cap behind admission control), plus the
//! test-only [`ChaosHook`] that replays a seeded
//! [`dropback::FaultPlan`] over accepted connections. All of them ride
//! out lock poisoning by taking the guard anyway — a panicked serve
//! thread must not wedge every other request behind a `PoisonError`.

use crate::clock::Deadline;
use dropback::{FaultAction, FaultPlan};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread;
use std::time::Duration;

/// A named OS thread's join handle.
pub type JoinHandle = thread::JoinHandle<()>;

// Monotonic ids for the observability layer. Ids start at 1 so 0 can
// mean "no id" in logs and dumps, and each space is process-wide: a
// request id names one request across every lane it crosses
// (`serve.req`, `serve.queue`, `serve.infer`, `serve.write`), a batch
// id names one flushed micro-batch, a connection id one accepted
// socket. Relaxed ordering suffices — ids only need uniqueness, not
// cross-thread ordering.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_BATCH_ID: AtomicU64 = AtomicU64::new(1);

/// The next connection id (the accept loop calls this once per accept).
pub fn next_conn_id() -> u64 {
    NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The next request id — the key every async trace lane and access-log
/// record of one request shares.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// The next micro-batch id (the batch worker calls this once per flush).
pub fn next_batch_id() -> u64 {
    NEXT_BATCH_ID.fetch_add(1, Ordering::Relaxed)
}

/// Spawns a named lifecycle thread. Names show up in panic messages and
/// debuggers as `serve-{name}`.
///
/// # Errors
///
/// Propagates the OS error if the thread cannot be created.
pub fn spawn<F>(name: &str, f: F) -> io::Result<JoinHandle>
where
    F: FnOnce() + Send + 'static,
{
    thread::Builder::new()
        .name(format!("serve-{name}"))
        .spawn(f)
}

/// A `Mutex<T>` + `Condvar` pair behind a closure API.
///
/// Callers never see the guard, the condvar, or a `PoisonError`; they
/// run closures under the lock ([`Monitor::with`], [`Monitor::update`])
/// and park on predicates ([`Monitor::wait_for`],
/// [`Monitor::wait_for_within`]). Predicates are re-checked after every
/// wakeup, so spurious wakeups are invisible to callers.
#[derive(Debug, Default)]
pub struct Monitor<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T> Monitor<T> {
    /// A monitor owning `value`.
    pub fn new(value: T) -> Self {
        Self {
            state: Mutex::new(value),
            cv: Condvar::new(),
        }
    }

    fn guard(&self) -> MutexGuard<'_, T> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` under the lock without waking waiters — for reads and
    /// for writes no predicate can be parked on.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.guard())
    }

    /// Runs `f` under the lock, then wakes every parked waiter so their
    /// predicates re-run against the new state.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let r = f(&mut self.guard());
        self.cv.notify_all();
        r
    }

    /// Parks until `f` answers `Some`, returning that answer. `f` runs
    /// under the lock each wakeup.
    pub fn wait_for<R>(&self, mut f: impl FnMut(&mut T) -> Option<R>) -> R {
        let mut g = self.guard();
        loop {
            if let Some(r) = f(&mut g) {
                return r;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Parks until `f` answers `Some` or `d` has elapsed, whichever
    /// comes first; `None` means the window closed with the predicate
    /// still unmet.
    pub fn wait_for_within<R>(
        &self,
        d: Duration,
        mut f: impl FnMut(&mut T) -> Option<R>,
    ) -> Option<R> {
        let deadline = Deadline::after(d);
        let mut g = self.guard();
        loop {
            if let Some(r) = f(&mut g) {
                return Some(r);
            }
            let left = deadline.remaining();
            if left == Duration::ZERO {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, left)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }
}

/// A read-mostly slot holding an `Arc<T>` that can be atomically
/// replaced — the hot-swap shape.
///
/// Readers pin the current value with [`Swap::get`] and keep using that
/// exact instance even if a [`Swap::swap`] lands immediately after;
/// later readers see the replacement. Reads take a shared lock for a
/// few instructions (one `Arc` clone), so the read path never blocks on
/// another reader.
#[derive(Debug)]
pub struct Swap<T> {
    cur: RwLock<Arc<T>>,
}

impl<T> Swap<T> {
    /// A slot holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            cur: RwLock::new(Arc::new(value)),
        }
    }

    /// The current value, pinned: the returned `Arc` stays valid across
    /// any number of subsequent swaps.
    pub fn get(&self) -> Arc<T> {
        Arc::clone(&self.cur.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically replaces the held value, returning the previous one.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        let mut cur = self.cur.write().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *cur, next)
    }
}

/// Where the server is in its lifecycle; see [`Shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Stopped,
}

/// A one-way, two-phase latch that winds the server down gracefully.
///
/// [`Shutdown::trigger`] moves `Running → Draining`: the server stops
/// admitting new work but in-flight requests keep running; teardown then
/// waits them out (bounded by the drain deadline) before
/// [`Shutdown::force`] moves `Draining → Stopped` and everything exits.
/// Both transitions are one-way — a latch never rearms.
///
/// Threads either poll [`Shutdown::is_set`] between requests ("should I
/// stop taking work?" — true from `Draining` on) or park in
/// [`Shutdown::wait_for`], which doubles as an interruptible sleep: it
/// returns early (with `true`) the moment shutdown triggers, so a watcher
/// sleeping out its poll interval still exits promptly.
#[derive(Debug)]
pub struct Shutdown {
    phase: Monitor<Phase>,
}

impl Default for Shutdown {
    fn default() -> Self {
        Self {
            phase: Monitor::new(Phase::Running),
        }
    }
}

impl Shutdown {
    /// A latch in the armed (running, not yet triggered) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins the drain phase and wakes every parked thread. In-flight
    /// work may finish; nothing new starts.
    pub fn trigger(&self) {
        self.phase.update(|p| {
            if *p == Phase::Running {
                *p = Phase::Draining;
            }
        });
    }

    /// Ends the drain phase: whatever is still in flight is out of time.
    pub fn force(&self) {
        self.phase.update(|p| *p = Phase::Stopped);
    }

    /// Whether the latch has been tripped (draining or stopped).
    pub fn is_set(&self) -> bool {
        self.phase.with(|p| *p != Phase::Running)
    }

    /// Whether the server is mid-drain: no longer admitting, not yet
    /// forced down.
    pub fn is_draining(&self) -> bool {
        self.phase.with(|p| *p == Phase::Draining)
    }

    /// Whether the drain window has closed.
    pub fn is_stopped(&self) -> bool {
        self.phase.with(|p| *p == Phase::Stopped)
    }

    /// Sleeps up to `d`, returning `true` immediately if shutdown
    /// triggers first (or had already triggered).
    pub fn wait_for(&self, d: Duration) -> bool {
        self.phase
            .wait_for_within(d, |p| (*p != Phase::Running).then_some(()))
            .is_some()
    }
}

/// An in-flight work counter the drain phase waits on.
///
/// Request handlers take a [`GatePass`] for the duration of each request
/// ([`Gate::enter`]); teardown parks in [`Gate::wait_idle_within`] until
/// every pass has dropped or the drain deadline closes. Purely advisory —
/// a gate never blocks the request path.
#[derive(Debug, Default)]
pub struct Gate {
    active: Monitor<usize>,
}

impl Gate {
    /// An idle gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one in-flight request; the returned pass deregisters it
    /// on drop (even on panic paths).
    pub fn enter(self: &Arc<Self>) -> GatePass {
        self.active.with(|n| *n += 1);
        GatePass {
            gate: Arc::clone(self),
        }
    }

    /// Requests currently in flight.
    pub fn active(&self) -> usize {
        self.active.with(|n| *n)
    }

    /// Parks until every pass has dropped or `d` elapses; `true` means
    /// the gate went idle in time.
    pub fn wait_idle_within(&self, d: Duration) -> bool {
        self.active
            .wait_for_within(d, |n| (*n == 0).then_some(()))
            .is_some()
    }
}

/// RAII token for one in-flight request; see [`Gate`].
#[derive(Debug)]
pub struct GatePass {
    gate: Arc<Gate>,
}

impl Drop for GatePass {
    fn drop(&mut self) {
        self.gate.active.update(|n| *n = n.saturating_sub(1));
    }
}

/// A connection-count cap: admission control at the accept loop.
///
/// [`Limiter::try_acquire`] never blocks — at the cap it answers `None`
/// and the caller sheds the connection (503 + `Retry-After`) instead of
/// queueing it. Each admitted connection holds a [`Permit`] whose drop
/// releases the slot, so handler exits (clean, error, or panic) can
/// never leak capacity.
#[derive(Debug)]
pub struct Limiter {
    cap: usize,
    active: Monitor<usize>,
}

impl Limiter {
    /// A limiter admitting at most `cap` concurrent holders.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            active: Monitor::new(0),
        }
    }

    /// Takes a slot if one is free; `None` means shed the work.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        self.active
            .with(|n| {
                if *n >= self.cap {
                    false
                } else {
                    *n += 1;
                    true
                }
            })
            .then(|| Permit {
                limiter: Arc::clone(self),
            })
    }

    /// Slots currently held.
    pub fn active(&self) -> usize {
        self.active.with(|n| *n)
    }
}

/// RAII token for one admitted connection; see [`Limiter`].
#[derive(Debug)]
pub struct Permit {
    limiter: Arc<Limiter>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.limiter.active.update(|n| *n = n.saturating_sub(1));
    }
}

/// Test-only chaos injection point for the accept loop.
///
/// A hook owns a seeded [`FaultPlan`] and hands the accept loop one
/// [`FaultAction`] per accepted connection, in accept order; the server
/// wraps that connection's socket halves in
/// [`dropback::FaultStream`]s applying it. Production configs leave the
/// hook unset — the chaos suite and the `chaos-smoke` check stage are
/// its only intended users.
#[derive(Debug)]
pub struct ChaosHook {
    plan: FaultPlan,
    next_conn: Monitor<u64>,
}

impl ChaosHook {
    /// A hook replaying `plan` over the server's accept order.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            next_conn: Monitor::new(0),
        }
    }

    /// The action for the next accepted connection (advances the accept
    /// ordinal).
    pub fn next_action(&self) -> FaultAction {
        let conn = self.next_conn.with(|n| {
            let c = *n;
            *n += 1;
            c
        });
        self.plan.action(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_never_zero_across_threads() {
        let ids = Arc::new(Monitor::new(Vec::<u64>::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ids = Arc::clone(&ids);
            handles.push(
                spawn("ids", move || {
                    for _ in 0..64 {
                        let id = next_request_id();
                        ids.update(|v| v.push(id));
                    }
                })
                .unwrap(),
            );
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = ids.with(|v| v.clone());
        assert!(seen.iter().all(|&id| id != 0), "0 is the no-id sentinel");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 256, "every allocation is distinct");
        assert_ne!(next_conn_id(), 0);
        assert_ne!(next_batch_id(), 0);
    }

    #[test]
    fn spawned_threads_carry_the_serve_prefix() {
        let h = spawn("unit", || {
            assert_eq!(
                thread::current().name(),
                Some("serve-unit"),
                "lifecycle threads must be identifiable"
            );
        })
        .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn shutdown_interrupts_a_parked_thread() {
        let latch = Arc::new(Shutdown::new());
        let seen = Arc::clone(&latch);
        let h = spawn("latch", move || {
            // Far longer than the test will take; trigger() must cut it.
            assert!(seen.wait_for(Duration::from_secs(30)));
        })
        .unwrap();
        latch.trigger();
        h.join().unwrap();
        assert!(latch.is_set());
        // After triggering, waits return instantly.
        assert!(latch.wait_for(Duration::from_secs(30)));
    }

    #[test]
    fn shutdown_phases_are_one_way() {
        let s = Shutdown::new();
        assert!(!s.is_set());
        assert!(!s.is_draining());
        assert!(!s.is_stopped());

        s.trigger();
        assert!(s.is_set());
        assert!(s.is_draining());
        assert!(!s.is_stopped());
        // Re-triggering mid-drain is a no-op, not a regression.
        s.trigger();
        assert!(s.is_draining());

        s.force();
        assert!(s.is_set());
        assert!(!s.is_draining());
        assert!(s.is_stopped());
        // A late trigger cannot resurrect the drain phase.
        s.trigger();
        assert!(s.is_stopped());
    }

    #[test]
    fn gate_tracks_passes_and_reports_idle() {
        let gate = Arc::new(Gate::new());
        assert!(gate.wait_idle_within(Duration::ZERO), "fresh gate is idle");

        let pass = gate.enter();
        let other = gate.enter();
        assert_eq!(gate.active(), 2);
        assert!(
            !gate.wait_idle_within(Duration::from_millis(5)),
            "held gate must time out"
        );

        drop(pass);
        assert_eq!(gate.active(), 1);
        let waiter = Arc::clone(&gate);
        let h = spawn("drain", move || {
            assert!(waiter.wait_idle_within(Duration::from_secs(30)));
        })
        .unwrap();
        drop(other);
        h.join().unwrap();
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn limiter_sheds_at_the_cap_and_permits_release_on_drop() {
        let limiter = Arc::new(Limiter::new(2));
        let a = limiter.try_acquire().expect("slot 1");
        let _b = limiter.try_acquire().expect("slot 2");
        assert_eq!(limiter.active(), 2);
        assert!(limiter.try_acquire().is_none(), "cap reached: shed");

        drop(a);
        assert_eq!(limiter.active(), 1);
        assert!(limiter.try_acquire().is_some(), "released slot is reusable");
    }

    #[test]
    fn chaos_hook_replays_its_plan_in_accept_order() {
        let plan = FaultPlan::cycle(vec![
            FaultAction::None,
            FaultAction::ResetAfter { bytes: 5 },
        ]);
        let hook = ChaosHook::new(plan.clone());
        assert_eq!(hook.next_action(), plan.action(0));
        assert_eq!(hook.next_action(), plan.action(1));
        assert_eq!(hook.next_action(), plan.action(2));
    }

    #[test]
    fn monitor_wakes_a_parked_predicate() {
        let m = Arc::new(Monitor::new(0u32));
        let seen = Arc::clone(&m);
        let h = spawn("monitor", move || {
            let v = seen.wait_for(|n| (*n >= 3).then_some(*n));
            assert_eq!(v, 3);
        })
        .unwrap();
        for _ in 0..3 {
            m.update(|n| *n += 1);
        }
        h.join().unwrap();
        // `with` does not signal — reads observe without waking anyone.
        assert_eq!(m.with(|n| *n), 3);
    }

    #[test]
    fn monitor_timed_wait_gives_up_but_reports_late_success() {
        let m = Monitor::new(false);
        // Predicate never satisfied: the window closes with None.
        assert_eq!(
            m.wait_for_within(Duration::from_millis(5), |b| b.then_some(())),
            None
        );
        m.update(|b| *b = true);
        // Already satisfied: returns immediately regardless of window.
        assert_eq!(
            m.wait_for_within(Duration::from_secs(30), |b| b.then_some(1)),
            Some(1)
        );
    }

    #[test]
    fn swap_pins_readers_across_a_replacement() {
        let slot = Swap::new("old");
        let pinned = slot.get();
        let prev = slot.swap(Arc::new("new"));
        assert_eq!(*prev, "old");
        assert_eq!(*pinned, "old", "in-flight readers keep their instance");
        assert_eq!(*slot.get(), "new", "later readers see the replacement");
    }
}
