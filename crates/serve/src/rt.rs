//! The serve crate's one sanctioned thread-creation site, plus the
//! shutdown latch every serve thread parks on.
//!
//! The `dropback-lint` `raw-thread` rule confines `thread::spawn` to the
//! tensor worker pool — compute must go through the pool so the
//! thread-count-invariance contract holds. A server, though, needs
//! *lifecycle* threads that are not compute: the accept loop, per
//! connection handlers, the batch worker, and the snapshot watcher. Those
//! all spawn through [`spawn`] here, the one serve file on the rule's
//! allowlist; batched forwards themselves still run on the worker pool.

use std::io;
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A named OS thread's join handle.
pub type JoinHandle = thread::JoinHandle<()>;

/// Spawns a named lifecycle thread. Names show up in panic messages and
/// debuggers as `serve-{name}`.
///
/// # Errors
///
/// Propagates the OS error if the thread cannot be created.
pub fn spawn<F>(name: &str, f: F) -> io::Result<JoinHandle>
where
    F: FnOnce() + Send + 'static,
{
    thread::Builder::new()
        .name(format!("serve-{name}"))
        .spawn(f)
}

/// A one-way latch that tells every serve thread to wind down.
///
/// Threads either poll [`Shutdown::is_set`] between requests or park in
/// [`Shutdown::wait_for`], which doubles as an interruptible sleep: it
/// returns early (with `true`) the moment shutdown triggers, so a watcher
/// sleeping out its poll interval still exits promptly.
#[derive(Debug, Default)]
pub struct Shutdown {
    set: Mutex<bool>,
    cv: Condvar,
}

impl Shutdown {
    /// A latch in the armed (not yet triggered) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the latch and wakes every parked thread.
    pub fn trigger(&self) {
        let mut set = self.set.lock().unwrap_or_else(|e| e.into_inner());
        *set = true;
        self.cv.notify_all();
    }

    /// Whether the latch has been tripped.
    pub fn is_set(&self) -> bool {
        *self.set.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sleeps up to `d`, returning `true` immediately if shutdown
    /// triggers first (or had already triggered).
    pub fn wait_for(&self, d: Duration) -> bool {
        let mut set = self.set.lock().unwrap_or_else(|e| e.into_inner());
        if *set {
            return true;
        }
        let (guard, _timeout) = self
            .cv
            .wait_timeout(set, d)
            .unwrap_or_else(|e| e.into_inner());
        set = guard;
        *set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spawned_threads_carry_the_serve_prefix() {
        let h = spawn("unit", || {
            assert_eq!(
                thread::current().name(),
                Some("serve-unit"),
                "lifecycle threads must be identifiable"
            );
        })
        .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn shutdown_interrupts_a_parked_thread() {
        let latch = Arc::new(Shutdown::new());
        let seen = Arc::clone(&latch);
        let h = spawn("latch", move || {
            // Far longer than the test will take; trigger() must cut it.
            assert!(seen.wait_for(Duration::from_secs(30)));
        })
        .unwrap();
        latch.trigger();
        h.join().unwrap();
        assert!(latch.is_set());
        // After triggering, waits return instantly.
        assert!(latch.wait_for(Duration::from_secs(30)));
    }
}
