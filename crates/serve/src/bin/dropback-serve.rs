//! `dropback-serve` — serve sparse checkpoints over HTTP, and the
//! tooling around it.
//!
//! ```text
//! dropback-serve prep  --dir ckpts --epochs 2            # make snapshots
//! dropback-serve serve --dir ckpts --addr 127.0.0.1:0 \
//!                      --addr-file /tmp/addr             # run the server
//! dropback-serve probe --addr 127.0.0.1:8080 --healthz   # curl substitute
//! ```
//!
//! Output contract: stdout carries only machine-parseable JSON (the final
//! telemetry digest for `serve`, response bodies for `probe`); progress
//! and diagnostics go to stderr. The workspace has no external
//! dependencies, so `probe` stands in for `curl` in `scripts/check.sh`.

use dropback::prelude::*;
use dropback::{CheckpointStore, FaultAction, FaultPlan};
use dropback_serve::client::infer_body;
use dropback_serve::rt::{self, Monitor};
use dropback_serve::{BatchConfig, HttpClient, Server, ServerConfig};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// A CLI failure: the message for stderr plus the process exit code.
struct CliError {
    message: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { message, code: 1 }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::from(message.to_string())
    }
}

/// Flags each subcommand accepts; anything else is an error, not a
/// silent fallback to defaults.
fn known_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "serve" => &[
            "dir",
            "addr",
            "addr-file",
            "max-batch",
            "flush-ms",
            "poll-ms",
            "queue-cap",
            "max-conns",
            "io-timeout-ms",
            "deadline-ms",
            "drain-ms",
            "retry-after-s",
            "threads",
            "trace",
            "access-log",
            "flightrec",
            "quiet",
        ],
        "prep" => &[
            "dir", "model", "epochs", "budget", "seed", "samples", "quiet",
        ],
        "probe" => &[
            "addr",
            "healthz",
            "infer",
            "dims",
            "repeat",
            "expect-epoch",
            "assert-latency",
            "flood",
            "seed",
            "expect-shed",
            "flightrec",
            "shutdown",
        ],
        _ => &[],
    }
}

fn parse_flags(cmd: &str, args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if !known_flags(cmd).contains(&key) {
                return Err(format!(
                    "unknown flag --{key} for {cmd:?} (valid: {})",
                    known_flags(cmd)
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
            // Boolean flags (`--quiet`) take no value: the next token is
            // a value only if it is not itself a flag.
            match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    flags.insert(key.to_string(), value.clone());
                    i += 2;
                }
                None => {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            return Err(format!("unexpected argument {:?}", args[i]));
        }
    }
    Ok(flags)
}

/// Reads `--key`: absent means `default`, present but unparsable is an
/// error naming the flag and the bad value.
fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|e| format!("invalid value {raw:?} for --{key}: {e}")),
    }
}

fn require<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    match flags.get(key).map(String::as_str) {
        Some(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("--{key} is required")),
    }
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let dir = require(flags, "dir")?;
    let quiet = flags.contains_key("quiet");
    if let Some(t) = flags.get("threads") {
        let n: usize = t
            .parse()
            .map_err(|e| format!("invalid value {t:?} for --threads: {e}"))?;
        dropback::tensor::pool::set_threads(n);
    }
    let trace_path = flags.get("trace").filter(|p| !p.is_empty()).cloned();
    let flightrec_path = flags.get("flightrec").filter(|p| !p.is_empty()).cloned();
    let cfg = ServerConfig {
        addr: get(flags, "addr", "127.0.0.1:0".to_string())?,
        batch: BatchConfig {
            max_batch: get(flags, "max-batch", 8usize)?.max(1),
            flush: Duration::from_millis(get(flags, "flush-ms", 2u64)?),
            queue_cap: get(flags, "queue-cap", 256usize)?.max(1),
        },
        poll: Duration::from_millis(get(flags, "poll-ms", 50u64)?.max(1)),
        max_conns: get(flags, "max-conns", 256usize)?.max(1),
        io_timeout: Duration::from_millis(get(flags, "io-timeout-ms", 5_000u64)?.max(1)),
        request_deadline: Duration::from_millis(get(flags, "deadline-ms", 2_000u64)?.max(1)),
        drain: Duration::from_millis(get(flags, "drain-ms", 2_000u64)?),
        retry_after: Duration::from_secs(get(flags, "retry-after-s", 1u64)?.max(1)),
        chaos: None,
        access_log: flags
            .get("access-log")
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from),
        flightrec_dump: flightrec_path.as_ref().map(std::path::PathBuf::from),
    };
    if let Some(path) = &flightrec_path {
        // A panicking server is the flight recorder's other customer:
        // dump the ring before the process dies so the last moments of
        // every request lane survive the crash.
        let path = std::path::PathBuf::from(path);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = dropback::telemetry::flightrec::write_dump(&mut f);
            }
            previous(info);
        }));
    }
    if trace_path.is_some() {
        dropback::telemetry::trace::start_tracing();
    }
    let store = CheckpointStore::open(dir).map_err(|e| format!("cannot open {dir}: {e}"))?;
    let server = Server::start(cfg, store).map_err(|e| e.to_string())?;
    let addr = server.addr();
    {
        let model = server.model();
        if !quiet {
            eprintln!(
                "serving {} (epoch {}, {} stored entries) at http://{addr} — \
                 POST /infer, GET /healthz, GET /metrics, POST /shutdown",
                model.name(),
                model.epoch(),
                model.entries()
            );
        }
    }
    if let Some(path) = flags.get("addr-file").filter(|p| !p.is_empty()) {
        // Write-then-rename so a polling reader never sees half an address.
        let tmp = format!("{path}.partial");
        std::fs::write(&tmp, addr.to_string())
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("cannot write --addr-file {path}: {e}"))?;
    }
    let digest = server.wait();
    if let Some(path) = &trace_path {
        dropback::telemetry::trace::stop_tracing();
        let records = dropback::telemetry::trace::take_trace();
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create --trace {path}: {e}"))?;
        dropback::telemetry::trace::write_chrome_trace(&mut file, &records)
            .map_err(|e| format!("cannot write --trace {path}: {e}"))?;
        if !quiet {
            eprintln!(
                "wrote {} trace events to {path} — load in Perfetto or \
                 analyze with dropback-trace",
                records.len()
            );
        }
    }
    println!("{}", digest.to_json().render());
    if !quiet {
        eprintln!("shut down cleanly; final telemetry digest on stdout");
        eprintln!("{}", digest.render());
    }
    Ok(())
}

/// Trains a tiny synthetic-MNIST run and snapshots after every epoch —
/// enough real checkpoints for smoke tests and load benches, with zero
/// dataset downloads. Deterministic in all flags.
fn cmd_prep(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let dir = require(flags, "dir")?;
    let model_name: String = get(flags, "model", "mnist-100-100".to_string())?;
    let epochs: usize = get(flags, "epochs", 2usize)?.max(1);
    let budget: usize = get(flags, "budget", 20_000usize)?;
    let seed: u64 = get(flags, "seed", 42u64)?;
    let samples: usize = get(flags, "samples", 512usize)?.max(64);
    let quiet = flags.contains_key("quiet");

    let mut net = match model_name.as_str() {
        "mnist-100-100" => models::mnist_100_100(seed),
        "lenet-300-100" => models::lenet_300_100(seed),
        other => {
            return Err(CliError::from(format!(
                "--model {other:?} has no serving path (use mnist-100-100 or lenet-300-100)"
            )))
        }
    };
    let mut opt = SparseDropBack::new(budget);
    let (train, _) = synthetic_mnist(samples, 64, seed);
    let batcher = Batcher::new(64, seed);
    let mut store = CheckpointStore::open(dir)
        .map_err(|e| format!("cannot open {dir}: {e}"))?
        .keep(epochs.max(3));
    let mut tel = Telemetry::disabled();
    let mut iteration = 0u64;
    for epoch in 0..epochs {
        for (x, labels) in batcher.epoch(&train, epoch as u64) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
            iteration += 1;
        }
        opt.end_epoch(epoch, net.store_mut());
        let progress = TrainProgress {
            next_epoch: epoch + 1,
            iteration,
            ..TrainProgress::fresh()
        };
        let state = TrainState::capture(&net, &opt, seed, &progress);
        let path = store
            .save(&state, &mut tel)
            .map_err(|e| format!("cannot snapshot epoch {epoch}: {e}"))?;
        if !quiet {
            eprintln!(
                "epoch {epoch}: wrote {} ({} entries)",
                path.display(),
                state.entries.len()
            );
        }
    }
    Ok(())
}

/// A deterministic probe input: a ramp over `[0, 1)`, different per index.
fn ramp_input(dims: usize) -> Vec<f32> {
    (0..dims).map(|i| (i % 251) as f32 / 251.0).collect()
}

/// One flood participant. Returns which tally slot it lands in:
/// 0 = answered 200, 1 = shed with 503, 2 = deliberately rude client
/// (sent half a body and vanished), 3 = anything else.
fn flood_client(addr: &str, action: FaultAction, body: &str) -> usize {
    if let FaultAction::ResetAfter { .. } = action {
        // A misbehaving peer: declare a body, send part of it, vanish.
        // The server must treat this as one cheap failed read, not a
        // wedged handler.
        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
            let _ = std::io::Write::write_all(
                &mut s,
                b"POST /infer HTTP/1.1\r\ncontent-length: 4096\r\n\r\n{\"input\":[0.1,",
            );
        }
        return 2;
    }
    match HttpClient::connect(addr).and_then(|mut c| c.post("/infer", body)) {
        Ok(resp) if resp.status == 200 => 0,
        Ok(resp) if resp.status == 503 => 1,
        _ => 3,
    }
}

/// Slams the server with `clients` concurrent one-shot connections — a
/// seeded mix of real `/infer` requests and rude mid-body hangups — and
/// tallies `(ok, shed, aborted, failed)`. With `retry_until_shed`, the
/// flood reruns with derived seeds (bounded at 5 rounds) until at least
/// one 503 lands, so smoke runs never flake on a lucky thread schedule.
fn flood(
    addr: &str,
    clients: usize,
    seed: u64,
    dims: usize,
    retry_until_shed: bool,
) -> Result<(u64, u64, u64, u64), CliError> {
    let body = Arc::new(infer_body(&ramp_input(dims)));
    let counts = Arc::new(Monitor::new((0u64, 0u64, 0u64, 0u64)));
    for round in 0..5u64 {
        let plan = FaultPlan::seeded(seed.wrapping_add(round));
        let mut handles = Vec::with_capacity(clients);
        for i in 0..clients {
            let addr = addr.to_string();
            let body = Arc::clone(&body);
            let counts = Arc::clone(&counts);
            let action = plan.action(i as u64);
            let handle = rt::spawn("flood", move || {
                let slot = flood_client(&addr, action, &body);
                counts.update(|c| match slot {
                    0 => c.0 += 1,
                    1 => c.1 += 1,
                    2 => c.2 += 1,
                    _ => c.3 += 1,
                });
            })
            .map_err(|e| format!("cannot spawn flood client: {e}"))?;
            handles.push(handle);
        }
        for h in handles {
            let _ = h.join();
        }
        if !retry_until_shed || counts.with(|c| c.1 > 0) {
            break;
        }
    }
    Ok(counts.with(|c| *c))
}

fn cmd_probe(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let addr = require(flags, "addr")?;
    let connect = || {
        HttpClient::connect(addr).map_err(|e| CliError::from(format!("cannot reach {addr}: {e}")))
    };

    if let Some(want) = flags.get("expect-epoch") {
        let want: usize = want
            .parse()
            .map_err(|e| format!("invalid value {want:?} for --expect-epoch: {e}"))?;
        // Hot swaps land on the watcher's poll cadence; give it a bounded
        // window rather than failing on the first tick.
        let mut last = None;
        for _ in 0..200 {
            let mut client = connect()?;
            let resp = client.get("/healthz").map_err(|e| e.to_string())?;
            let epoch = dropback::telemetry::Json::parse(&resp.body)
                .ok()
                .and_then(|j| j.get("epoch").and_then(|e| e.as_u64()));
            last = epoch;
            if epoch == Some(want as u64) {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        if last != Some(want as u64) {
            return Err(CliError::from(format!(
                "server never reached epoch {want} (last seen: {last:?})"
            )));
        }
    }

    if flags.contains_key("healthz") {
        let resp = connect()?.get("/healthz").map_err(|e| e.to_string())?;
        println!("{}", resp.body);
        if resp.status != 200 {
            return Err(CliError::from(format!("/healthz answered {}", resp.status)));
        }
    }

    if flags.contains_key("infer") {
        let dims: usize = get(flags, "dims", 784usize)?;
        let repeat: usize = get(flags, "repeat", 1usize)?.max(1);
        let input = ramp_input(dims);
        let mut client = connect()?;
        let mut last = None;
        for _ in 0..repeat {
            last = Some(client.infer(&input).map_err(|e| e.to_string())?);
        }
        if let Some(reply) = last {
            println!(
                "{{\"argmax\":{},\"epoch\":{},\"batch\":{},\"logits\":{}}}",
                reply.argmax,
                reply.epoch,
                reply.batch,
                reply.logits.len()
            );
        }
    }

    if flags.contains_key("assert-latency") {
        let resp = connect()?.get("/metrics").map_err(|e| e.to_string())?;
        let json = dropback::telemetry::Json::parse(&resp.body)
            .map_err(|e| format!("/metrics is not JSON: {e}"))?;
        let quantile = |q: &str| {
            json.get("histograms")
                .and_then(|h| h.get("serve.request_ns"))
                .and_then(|h| h.get(q))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        let (p50, p99) = (quantile("p50"), quantile("p99"));
        if p50 <= 0.0 || p99 <= 0.0 {
            return Err(CliError::from(format!(
                "serve.request_ns quantiles not populated (p50={p50}, p99={p99}) — \
                 did any /infer requests run?"
            )));
        }
        eprintln!("serve.request_ns p50={p50}ns p99={p99}ns");
    }

    if let Some(raw) = flags.get("flood") {
        let clients: usize = raw
            .parse()
            .map_err(|e| format!("invalid value {raw:?} for --flood: {e}"))?;
        let clients = clients.max(1);
        let seed: u64 = get(flags, "seed", 42u64)?;
        let dims: usize = get(flags, "dims", 784usize)?;
        let expect_shed = flags.contains_key("expect-shed");
        let counts = flood(addr, clients, seed, dims, expect_shed)?;
        println!(
            "{{\"flood\":{{\"clients\":{},\"ok\":{},\"shed\":{},\"aborted\":{},\"failed\":{}}}}}",
            clients, counts.0, counts.1, counts.2, counts.3
        );
        if expect_shed && counts.1 == 0 {
            return Err(CliError::from(
                "--expect-shed: the flood never drew a 503 out of the server".to_string(),
            ));
        }
        // The whole point of shedding is that the server survives it.
        let resp = connect()?.get("/healthz").map_err(|e| e.to_string())?;
        if resp.status != 200 {
            return Err(CliError::from(format!(
                "/healthz answered {} after the flood — the server did not stay live",
                resp.status
            )));
        }
    }

    if flags.contains_key("flightrec") {
        let resp = connect()?
            .get("/debug/flightrec")
            .map_err(|e| e.to_string())?;
        println!("{}", resp.body);
        if resp.status != 200 {
            return Err(CliError::from(format!(
                "/debug/flightrec answered {}",
                resp.status
            )));
        }
    }

    if flags.contains_key("shutdown") {
        let resp = connect()?
            .post("/shutdown", "")
            .map_err(|e| e.to_string())?;
        println!("{}", resp.body);
        if resp.status != 200 {
            return Err(CliError::from(format!(
                "/shutdown answered {}",
                resp.status
            )));
        }
    }
    Ok(())
}

fn usage() -> String {
    "usage: dropback-serve <serve|prep|probe> [--flags]\n\
     \x20 serve --dir DIR [--addr 127.0.0.1:0] [--addr-file PATH] [--max-batch 8]\n\
     \x20       [--flush-ms 2] [--poll-ms 50] [--queue-cap 256] [--max-conns 256]\n\
     \x20       [--io-timeout-ms 5000] [--deadline-ms 2000] [--drain-ms 2000]\n\
     \x20       [--retry-after-s 1] [--threads N] [--trace PATH]\n\
     \x20       [--access-log PATH] [--flightrec PATH] [--quiet]\n\
     \x20 prep  --dir DIR [--model mnist-100-100] [--epochs 2] [--budget 20000]\n\
     \x20       [--seed 42] [--samples 512] [--quiet]\n\
     \x20 probe --addr HOST:PORT [--healthz] [--infer [--dims 784] [--repeat 1]]\n\
     \x20       [--expect-epoch N] [--assert-latency] [--flightrec] [--shutdown]\n\
     \x20       [--flood N [--seed 42] [--expect-shed]]"
        .to_string()
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(CliError::from(usage()));
    };
    let flags = parse_flags(cmd, &args[1..])?;
    match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "prep" => cmd_prep(&flags),
        "probe" => cmd_probe(&flags),
        other => Err(CliError::from(format!(
            "unknown subcommand {other:?}\n{}",
            usage()
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dropback-serve: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
