//! Micro-batching: many concurrent requests, one forward pass.
//!
//! Handler threads park each request in a bounded queue; a single batch
//! worker drains it into one batched [`crate::ServingModel::infer`] call
//! the moment either the batch is full or the oldest queued request has
//! waited out the flush deadline. Batching is where DropBack serving wins
//! big: the streaming evaluator walks the weights **once per batch** —
//! one regeneration sweep amortized over every request in it — so batch
//! fill shows up directly as regen traffic saved (`serve.batch_fill` vs
//! `serve.requests` in the telemetry digest).
//!
//! The model is resolved **at flush time**, not at submit time: a batch
//! always evaluates against one single generation, so a hot-swap can
//! never split a batch across two models.

use crate::clock::Deadline;
use crate::error::ServeError;
use crate::model::ModelSlot;
use crate::rt::{self, Monitor};
use dropback_telemetry::{trace, Collector, Span, Stopwatch};
use dropback_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Knobs for the batching queue.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush when the first request of a forming batch has waited this
    /// long, even if the batch is not full.
    pub flush: Duration,
    /// Requests queued beyond this bound are refused with
    /// [`ServeError::Overloaded`] (HTTP 503) instead of growing the queue
    /// without limit.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            flush: Duration::from_millis(2),
            queue_cap: 256,
        }
    }
}

/// What a request gets back from a flushed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// Class logits, bit-identical to a direct streaming forward on the
    /// serving snapshot.
    pub logits: Vec<f32>,
    /// Index of the largest logit (first wins ties).
    pub argmax: usize,
    /// Epoch of the model generation that evaluated the request.
    pub epoch: usize,
    /// Size of the micro-batch this request rode in.
    pub batch: usize,
    /// Id of the micro-batch this request rode in (0 = unknown, e.g. a
    /// reply parsed from an older server).
    pub batch_id: u64,
    /// Nanoseconds this request waited in the queue before its batch
    /// flushed (0 = unknown).
    pub queue_ns: u64,
    /// Nanoseconds the batched forward took — shared by every rider of
    /// the batch (0 = unknown).
    pub infer_ns: u64,
}

/// A one-shot slot the submitting thread parks on until its batch lands.
#[derive(Debug, Default)]
struct ReplySlot {
    value: Monitor<Option<Result<InferReply, ServeError>>>,
}

impl ReplySlot {
    fn fulfill(&self, r: Result<InferReply, ServeError>) {
        self.value.update(|v| *v = Some(r));
    }

    fn wait(&self) -> Result<InferReply, ServeError> {
        self.value.wait_for(Option::take)
    }
}

struct Pending {
    /// The request id threaded from the accept loop; keys this request's
    /// `serve.queue` trace lane and its access-log record.
    id: u64,
    /// Whether this request's lanes go to the trace buffer — snapshotted
    /// once when the request entered the server, so a lane whose begin
    /// and end straddle a tracing toggle still pairs up (see
    /// [`trace::async_begin_for`]).
    traced: bool,
    input: Vec<f32>,
    reply: Arc<ReplySlot>,
    /// Shed the request unevaluated if this passes before its batch
    /// flushes — a backlog must never spend a forward pass on a reply
    /// nobody is waiting for anymore.
    deadline: Option<Deadline>,
    /// Measures queue wait from enqueue to dequeue (`serve.queue_ns`).
    queued: Stopwatch,
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

/// The bounded request queue plus its flush conditions.
pub struct BatchQueue {
    state: Monitor<QueueState>,
    cfg: BatchConfig,
}

impl std::fmt::Debug for BatchQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchQueue")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl BatchQueue {
    /// An empty queue with the given knobs.
    pub fn new(cfg: BatchConfig) -> Self {
        Self {
            state: Monitor::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cfg,
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Queues one input and blocks until its micro-batch has been
    /// evaluated, returning this request's row of the batched forward.
    /// A `deadline` caps how stale the request may get: if it passes
    /// before the batch flushes, the worker sheds the request without
    /// evaluating it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::DeadlineExceeded`] when the deadline passes while
    /// queued, [`ServeError::ShuttingDown`] when the server stops before
    /// the request is evaluated, [`ServeError::BadRequest`] when the
    /// input width does not match the model, and evaluation errors
    /// propagated from the worker.
    pub fn submit(
        &self,
        id: u64,
        traced: bool,
        input: Vec<f32>,
        deadline: Option<Deadline>,
    ) -> Result<InferReply, ServeError> {
        let reply = Arc::new(ReplySlot::default());
        self.state.update(|s| {
            if s.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if s.queue.len() >= self.cfg.queue_cap {
                return Err(ServeError::Overloaded);
            }
            // The lane opens under the lock: the worker cannot dequeue
            // (and emit the matching `e`) until this closure returns, so
            // `b` always precedes `e` — on the trace clock and in the
            // flight recorder's claim order alike.
            trace::async_begin_for(traced, "serve.queue", id, &[]);
            s.queue.push_back(Pending {
                id,
                traced,
                input,
                reply: Arc::clone(&reply),
                deadline,
                queued: Stopwatch::started(),
            });
            Ok(())
        })?;
        reply.wait()
    }

    /// Trips shutdown: queued-but-unevaluated requests are refused with
    /// [`ServeError::ShuttingDown`] and the worker exits.
    pub fn stop(&self) {
        self.state.update(|s| {
            s.shutdown = true;
            for p in s.queue.drain(..) {
                // Close each refused request's queue lane so a trace cut
                // by shutdown still balances: every `Pending` is
                // fulfilled exactly once, here or in `run_batch`.
                trace::async_end_for(p.traced, "serve.queue", p.id, &[]);
                p.reply.fulfill(Err(ServeError::ShuttingDown));
            }
        });
    }

    /// Blocks until a batch is ready per the flush rules, returning
    /// `None` on shutdown. A returned batch is non-empty and at most
    /// `max_batch` long.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        // Phase 1: wait for the first request (or shutdown). Only this
        // worker drains the queue, so once non-empty it stays non-empty
        // until the drain below.
        let alive = self
            .state
            .wait_for(|s| match (s.shutdown, s.queue.is_empty()) {
                (true, _) => Some(false),
                (false, false) => Some(true),
                (false, true) => None,
            });
        if !alive {
            return None;
        }
        // Phase 2: the flush window — fill up to max_batch or deadline.
        let max = self.cfg.max_batch;
        self.state.wait_for_within(self.cfg.flush, |s| {
            (s.shutdown || s.queue.len() >= max).then_some(())
        });
        self.state.with(|s| {
            if s.shutdown {
                // stop() already refused everything still queued.
                return None;
            }
            let n = s.queue.len().min(max);
            Some(s.queue.drain(..n).collect())
        })
    }

    /// Evaluates one batch against the generation current at flush time.
    fn run_batch(&self, batch: Vec<Pending>, slot: &ModelSlot, collector: &Collector) {
        let model = slot.get();
        let in_dim = model.in_dim();
        let out_dim = model.out_dim();

        // Width-check every request against *this* generation; mismatches
        // are refused individually so the rest of the batch still runs.
        // Every dequeued request leaves the `serve.queue` lane here —
        // shed, refused, or riding — so request timelines stay balanced
        // no matter which exit a request takes.
        let mut rows = Vec::with_capacity(batch.len());
        let mut flat = Vec::with_capacity(batch.len() * in_dim);
        for p in batch {
            let queue_ns = p.queued.elapsed_ns().unwrap_or(0);
            trace::async_end_for(p.traced, "serve.queue", p.id, &[]);
            collector
                .histogram("serve.queue_ns")
                .record(queue_ns as f64);
            // Shed expired requests *before* inference: their handlers
            // answer 503, and the forward pass never pays for them.
            if p.deadline.is_some_and(|d| d.expired()) {
                collector.counter("serve.batch_expired").inc();
                p.reply.fulfill(Err(ServeError::DeadlineExceeded));
                continue;
            }
            if p.input.len() != in_dim {
                p.reply.fulfill(Err(ServeError::BadRequest(format!(
                    "input has {} features, model {} (epoch {}) expects {in_dim}",
                    p.input.len(),
                    model.name(),
                    model.epoch()
                ))));
                continue;
            }
            flat.extend_from_slice(&p.input);
            rows.push((p.id, p.traced, p.reply, queue_ns));
        }
        let n = rows.len();
        if n == 0 {
            return;
        }

        let batch_id = rt::next_batch_id();
        let _span = Span::enter("serve.batch");
        for (id, traced, _, _) in &rows {
            trace::async_begin_for(
                *traced,
                "serve.infer",
                *id,
                &[("batch_id", batch_id as f64)],
            );
        }
        let watch = Stopwatch::started();
        let result = model.infer(&Tensor::from_vec(vec![n, in_dim], flat));
        let infer_ns = watch.elapsed_ns().unwrap_or(0);
        for (id, traced, _, _) in &rows {
            trace::async_end_for(*traced, "serve.infer", *id, &[]);
            collector
                .histogram("serve.infer_ns")
                .record(infer_ns as f64);
        }
        collector
            .histogram("serve.batch_ns")
            .record(infer_ns as f64);
        collector.histogram("serve.batch_fill").record(n as f64);
        collector.counter("serve.batches").inc();
        trace::record_counter("serve.batch_fill", n as f64);

        match result {
            Ok((y, stats)) => {
                collector.counter("serve.regens").add(stats.regens);
                collector
                    .counter("serve.stored_reads")
                    .add(stats.stored_reads);
                // One instant per flushed batch: the fill/generation/regen
                // annotations the batch-fill digest in `dropback-trace`
                // aggregates over time.
                trace::async_instant(
                    "serve.batch",
                    batch_id,
                    &[
                        ("fill", n as f64),
                        ("epoch", model.epoch() as f64),
                        ("regens", stats.regens as f64),
                        ("stored_reads", stats.stored_reads as f64),
                    ],
                );
                for (r, (_, _, reply, queue_ns)) in rows.into_iter().enumerate() {
                    let logits = y.data()[r * out_dim..(r + 1) * out_dim].to_vec();
                    let argmax = logits
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    reply.fulfill(Ok(InferReply {
                        logits,
                        argmax,
                        epoch: model.epoch(),
                        batch: n,
                        batch_id,
                        queue_ns,
                        infer_ns,
                    }));
                }
            }
            Err(e) => {
                collector.counter("serve.batch_failed").inc();
                trace::async_instant(
                    "serve.batch",
                    batch_id,
                    &[("fill", n as f64), ("epoch", model.epoch() as f64)],
                );
                let msg = e.to_string();
                for (_, _, reply, _) in rows {
                    reply.fulfill(Err(ServeError::BadRequest(msg.clone())));
                }
            }
        }
    }

    /// Spawns the batch worker thread. It drains the queue until
    /// [`BatchQueue::stop`] is called.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the thread cannot be created.
    pub fn start_worker(
        self: &Arc<Self>,
        slot: Arc<ModelSlot>,
        collector: Arc<Collector>,
    ) -> std::io::Result<rt::JoinHandle> {
        let queue = Arc::clone(self);
        rt::spawn("batch", move || {
            while let Some(batch) = queue.next_batch() {
                queue.run_batch(batch, &slot, &collector);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelSlot, ServingModel};
    use dropback::{TrainProgress, TrainState};
    use dropback_nn::models;
    use dropback_optim::{Optimizer, SparseDropBack};

    fn slot() -> Arc<ModelSlot> {
        let mut net = models::mnist_100_100(21);
        let mut opt = SparseDropBack::new(100);
        opt.step(net.store_mut(), 0.0);
        let state = TrainState::capture(&net, &opt, 1, &TrainProgress::fresh());
        Arc::new(ModelSlot::new(
            ServingModel::from_state(&state, "/tmp/t").unwrap(),
        ))
    }

    #[test]
    fn submitted_requests_come_back_with_logits() {
        let q = Arc::new(BatchQueue::new(BatchConfig {
            max_batch: 4,
            flush: Duration::from_millis(1),
            queue_cap: 16,
        }));
        let collector = Arc::new(Collector::new());
        let worker = q.start_worker(slot(), Arc::clone(&collector)).unwrap();

        let reply = q.submit(1, false, vec![0.1; 784], None).unwrap();
        assert_eq!(reply.logits.len(), 10);
        assert!(reply.argmax < 10);
        assert!(reply.batch >= 1);
        assert_ne!(reply.batch_id, 0, "every flushed batch is numbered");
        assert!(
            reply.infer_ns > 0,
            "the batched forward's duration rides the reply"
        );
        assert_eq!(collector.counter("serve.batches").get(), 1);
        assert_eq!(
            collector.histogram("serve.queue_ns").count(),
            1,
            "queue wait is recorded per dequeued request"
        );
        assert_eq!(collector.histogram("serve.infer_ns").count(), 1);

        q.stop();
        worker.join().unwrap();
    }

    #[test]
    fn full_batches_flush_without_waiting_for_the_deadline() {
        let q = Arc::new(BatchQueue::new(BatchConfig {
            max_batch: 2,
            // A deadline long enough that only the size trigger can
            // plausibly flush within the test's runtime.
            flush: Duration::from_secs(5),
            queue_cap: 16,
        }));
        let collector = Arc::new(Collector::new());
        let worker = q.start_worker(slot(), Arc::clone(&collector)).unwrap();

        let q2 = Arc::clone(&q);
        let peer = rt::spawn("peer", move || {
            q2.submit(2, false, vec![0.2; 784], None).unwrap();
        })
        .unwrap();
        let reply = q.submit(3, false, vec![0.1; 784], None).unwrap();
        peer.join().unwrap();
        assert_eq!(reply.batch, 2, "both requests must ride one batch");

        q.stop();
        worker.join().unwrap();
    }

    #[test]
    fn wrong_width_is_refused_per_request_not_per_batch() {
        let q = Arc::new(BatchQueue::new(BatchConfig {
            max_batch: 2,
            flush: Duration::from_secs(5),
            queue_cap: 16,
        }));
        let collector = Arc::new(Collector::new());
        let worker = q.start_worker(slot(), Arc::clone(&collector)).unwrap();

        let q2 = Arc::clone(&q);
        let bad = rt::spawn("bad", move || {
            let err = q2.submit(4, false, vec![0.5; 3], None).unwrap_err();
            assert_eq!(err.http_status(), 400);
            assert!(err.to_string().contains("784"));
        })
        .unwrap();
        let good = q.submit(5, false, vec![0.1; 784], None).unwrap();
        bad.join().unwrap();
        assert_eq!(good.logits.len(), 10, "good request survives a bad peer");

        q.stop();
        worker.join().unwrap();
    }

    #[test]
    fn expired_requests_are_shed_before_inference_peers_still_run() {
        let q = Arc::new(BatchQueue::new(BatchConfig {
            max_batch: 2,
            flush: Duration::from_secs(5),
            queue_cap: 16,
        }));
        let collector = Arc::new(Collector::new());
        let worker = q.start_worker(slot(), Arc::clone(&collector)).unwrap();

        // An already-expired deadline: the worker must shed it without
        // spending a forward pass, while its fresh peer still evaluates.
        let q2 = Arc::clone(&q);
        let expired = rt::spawn("expired", move || {
            let err = q2
                .submit(
                    6,
                    false,
                    vec![0.3; 784],
                    Some(Deadline::after(Duration::ZERO)),
                )
                .unwrap_err();
            assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
            assert_eq!(err.http_status(), 503);
        })
        .unwrap();
        let fresh = q
            .submit(
                7,
                false,
                vec![0.1; 784],
                Some(Deadline::after(Duration::from_secs(60))),
            )
            .unwrap();
        expired.join().unwrap();
        assert_eq!(fresh.logits.len(), 10, "fresh peer survives a shed one");
        assert_eq!(collector.counter("serve.batch_expired").get(), 1);

        q.stop();
        worker.join().unwrap();
    }

    #[test]
    fn request_lanes_balance_in_the_exported_trace() {
        use dropback_telemetry::trace::{self, TracePhase};

        let q = Arc::new(BatchQueue::new(BatchConfig {
            max_batch: 2,
            flush: Duration::from_secs(5),
            queue_cap: 16,
        }));
        let collector = Arc::new(Collector::new());
        let worker = q.start_worker(slot(), Arc::clone(&collector)).unwrap();

        // Ids far above anything the global counter reaches in this test
        // binary, so concurrent server tests cannot collide with them.
        const A: u64 = 900_001;
        const B: u64 = 900_002;
        let _ = trace::take_trace();
        trace::start_tracing();
        let q2 = Arc::clone(&q);
        let peer = rt::spawn("peer", move || {
            q2.submit(B, true, vec![0.2; 784], None).unwrap();
        })
        .unwrap();
        let reply = q.submit(A, true, vec![0.1; 784], None).unwrap();
        peer.join().unwrap();
        trace::stop_tracing();

        let records = trace::take_trace();
        // Each request's queue and infer lanes open and close exactly once.
        for (lane, id) in [
            ("serve.queue", A),
            ("serve.queue", B),
            ("serve.infer", A),
            ("serve.infer", B),
        ] {
            let phases: Vec<_> = records
                .iter()
                .filter(|r| r.name == lane && r.id == Some(id))
                .map(|r| r.phase)
                .collect();
            assert_eq!(
                phases,
                vec![TracePhase::AsyncBegin, TracePhase::AsyncEnd],
                "{lane} lane for id {id}"
            );
        }
        // The flushed batch dropped one instant carrying its fill.
        let instant = records
            .iter()
            .find(|r| r.name == "serve.batch" && r.id == Some(reply.batch_id))
            .expect("batch instant");
        assert_eq!(instant.phase, TracePhase::AsyncInstant);
        assert!(instant.args.contains(&("fill", 2.0)));

        q.stop();
        worker.join().unwrap();
    }

    #[test]
    fn overload_and_shutdown_are_refusals_not_hangs() {
        let q = BatchQueue::new(BatchConfig {
            max_batch: 8,
            flush: Duration::from_millis(1),
            queue_cap: 0,
        });
        // No worker running: capacity zero refuses immediately.
        assert!(matches!(
            q.submit(8, false, vec![0.0; 784], None),
            Err(ServeError::Overloaded)
        ));
        q.stop();
        assert!(matches!(
            q.submit(9, false, vec![0.0; 784], None),
            Err(ServeError::ShuttingDown)
        ));
    }
}
