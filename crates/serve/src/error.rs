//! One error type for the whole serving path.
//!
//! Every failure a request can hit — malformed HTTP, an unloadable
//! snapshot, a model the streaming evaluator cannot serve, an overloaded
//! queue — flows through [`ServeError`] so handlers can map it onto an
//! HTTP status in exactly one place ([`ServeError::http_status`]).

use dropback::{CheckpointError, StreamError};
use std::io;
use std::path::PathBuf;

/// Why a serving operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying socket or filesystem error.
    Io(io::Error),
    /// The checkpoint store could not list or load snapshots.
    Checkpoint(CheckpointError),
    /// The streaming evaluator rejected the model or the input.
    Stream(StreamError),
    /// The snapshot directory holds no loadable snapshot.
    NoSnapshot(PathBuf),
    /// The snapshot's architecture has no streaming-inference path.
    UnsupportedModel(String),
    /// The client sent something the server cannot act on (HTTP 400).
    BadRequest(String),
    /// The request's header block exceeds the parser's bounds (HTTP 431).
    HeadersTooLarge(String),
    /// The declared body exceeds the accepted maximum (HTTP 413).
    BodyTooLarge {
        /// Bytes the client declared.
        got: usize,
        /// Largest body the server accepts.
        limit: usize,
    },
    /// The bounded request queue is full (HTTP 503).
    Overloaded,
    /// The request's deadline passed before it reached the model; it was
    /// shed unevaluated (HTTP 503 — the server is overloaded, not broken).
    DeadlineExceeded,
    /// The server is shutting down; the request was not evaluated.
    ShuttingDown,
}

impl ServeError {
    /// The HTTP status this error maps to when it reaches a handler.
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::BodyTooLarge { .. } => 413,
            ServeError::HeadersTooLarge(_) => 431,
            ServeError::Overloaded | ServeError::DeadlineExceeded | ServeError::ShuttingDown => 503,
            _ => 500,
        }
    }

    /// Whether this error is server pressure the client should retry
    /// after a pause (everything the server answers 503 + `Retry-After`).
    pub fn is_pressure(&self) -> bool {
        self.http_status() == 503
    }

    /// A stable machine-readable slug for access-log records — one word
    /// per failure class, never the free-form message.
    pub fn reason(&self) -> &'static str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::Checkpoint(_) => "checkpoint",
            ServeError::Stream(_) => "stream",
            ServeError::NoSnapshot(_) => "no-snapshot",
            ServeError::UnsupportedModel(_) => "unsupported-model",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::HeadersTooLarge(_) => "headers-too-large",
            ServeError::BodyTooLarge { .. } => "body-too-large",
            ServeError::Overloaded => "overloaded",
            ServeError::DeadlineExceeded => "deadline",
            ServeError::ShuttingDown => "shutting-down",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Stream(e) => write!(f, "streaming inference error: {e}"),
            ServeError::NoSnapshot(dir) => write!(
                f,
                "no loadable snapshot in {} — train with checkpointing enabled \
                 (or run `dropback-serve prep`) before serving",
                dir.display()
            ),
            ServeError::UnsupportedModel(name) => write!(
                f,
                "model {name:?} has no streaming-inference path; serving supports \
                 the MLP zoo entries (mnist-100-100, lenet-300-100)"
            ),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::HeadersTooLarge(msg) => {
                write!(f, "request header block refused: {msg}")
            }
            ServeError::BodyTooLarge { got, limit } => {
                write!(f, "body of {got} bytes exceeds the {limit}-byte limit")
            }
            ServeError::Overloaded => {
                write!(f, "request queue is full; retry later or raise --queue-cap")
            }
            ServeError::DeadlineExceeded => write!(
                f,
                "request deadline passed before evaluation; server is \
                 overloaded — retry with backoff"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_map_client_faults_to_4xx_and_pressure_to_503() {
        assert_eq!(ServeError::BadRequest("x".into()).http_status(), 400);
        assert_eq!(ServeError::HeadersTooLarge("x".into()).http_status(), 431);
        assert_eq!(
            ServeError::BodyTooLarge { got: 9, limit: 1 }.http_status(),
            413
        );
        assert_eq!(ServeError::Overloaded.http_status(), 503);
        assert_eq!(ServeError::DeadlineExceeded.http_status(), 503);
        assert_eq!(ServeError::ShuttingDown.http_status(), 503);
        for pressure in [
            ServeError::Overloaded,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
        ] {
            assert!(pressure.is_pressure(), "{pressure} invites a retry");
        }
        assert!(!ServeError::BadRequest("x".into()).is_pressure());
        assert!(!ServeError::BodyTooLarge { got: 9, limit: 1 }.is_pressure());
        assert_eq!(ServeError::NoSnapshot("/tmp".into()).http_status(), 500);
        assert_eq!(
            ServeError::UnsupportedModel("vgg-s-nano".into()).http_status(),
            500
        );
    }

    #[test]
    fn reasons_are_stable_single_word_slugs() {
        for (e, want) in [
            (ServeError::Overloaded, "overloaded"),
            (ServeError::DeadlineExceeded, "deadline"),
            (ServeError::ShuttingDown, "shutting-down"),
            (ServeError::BadRequest("x".into()), "bad-request"),
            (
                ServeError::BodyTooLarge { got: 9, limit: 1 },
                "body-too-large",
            ),
        ] {
            assert_eq!(e.reason(), want);
            assert!(
                e.reason()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "reasons are log-grep-safe slugs"
            );
        }
    }

    #[test]
    fn messages_are_actionable() {
        let e = ServeError::UnsupportedModel("wrn-nano".into());
        assert!(e.to_string().contains("mnist-100-100"));
        let e = ServeError::NoSnapshot("/data/ckpt".into());
        assert!(e.to_string().contains("/data/ckpt"));
    }
}
