//! From snapshot to servable model, and the slot requests read it from.
//!
//! A `DROPBKv2` snapshot carries `(model name, init seed, k tracked
//! entries)`. [`ServingModel::from_state`] rebuilds the architecture from
//! the model zoo, keys the tracked entries by global index, and hands
//! both to [`dropback::StreamingModel`] — every untracked weight is
//! regenerated from `regen(seed, index)` at evaluation time, so the
//! server's resident weight state is exactly the paper's deployment
//! artifact, never a dense matrix.
//!
//! [`ModelSlot`] is the hot-swap point: requests clone out an
//! `Arc<ServingModel>` and evaluate against that pinned instance, so a
//! concurrent [`ModelSlot::swap`] never changes a request mid-flight —
//! in-flight work finishes on the old model, later requests see the new
//! one.

use crate::error::ServeError;
use crate::rt::Swap;
use dropback::{CheckpointError, StreamStats, StreamingModel, TrainState};
use dropback_nn::{models, Network};
use dropback_tensor::Tensor;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Architectures with a streaming-inference path, by zoo name.
fn build_network(name: &str, seed: u64) -> Option<Network> {
    match name {
        "mnist-100-100" => Some(models::mnist_100_100(seed)),
        "lenet-300-100" => Some(models::lenet_300_100(seed)),
        _ => None,
    }
}

/// One immutable, fully-loaded model generation.
#[derive(Debug, Clone)]
pub struct ServingModel {
    name: String,
    epoch: usize,
    source: PathBuf,
    entries: usize,
    stream: StreamingModel,
}

impl ServingModel {
    /// Builds a servable model from a loaded snapshot. `source` is the
    /// snapshot path the state came from (shown in `/healthz` and logs).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnsupportedModel`] for architectures outside the
    /// streaming MLP zoo, [`ServeError::Checkpoint`] if an entry indexes
    /// past the parameter store, [`ServeError::Stream`] if the evaluator
    /// rejects the parameter layout.
    pub fn from_state(state: &TrainState, source: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let net = build_network(&state.model, state.init_seed)
            .ok_or_else(|| ServeError::UnsupportedModel(state.model.clone()))?;
        let n = net.num_params();
        let mut tracked = BTreeMap::new();
        for &(i, v) in &state.entries {
            if i as usize >= n {
                return Err(ServeError::Checkpoint(CheckpointError::IndexOutOfRange {
                    index: i,
                    len: n,
                }));
            }
            tracked.insert(i as usize, v);
        }
        let entries = tracked.len();
        let stream = StreamingModel::new(net.store(), &tracked)?;
        Ok(Self {
            name: state.model.clone(),
            epoch: state.progress.next_epoch,
            source: source.into(),
            entries,
            stream,
        })
    }

    /// Zoo name of the architecture being served.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Training epoch the snapshot was taken after (its generation id).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Snapshot file this generation was loaded from.
    pub fn source(&self) -> &Path {
        &self.source
    }

    /// Number of stored (tracked) weight entries — the `k` of the paper.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Input feature width requests must supply.
    pub fn in_dim(&self) -> usize {
        self.stream.in_dim()
    }

    /// Logit width of responses.
    pub fn out_dim(&self) -> usize {
        self.stream.out_dim()
    }

    /// Batched forward over `x: [n, in_dim]` on the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Stream`] if `x` has the wrong shape.
    pub fn infer(&self, x: &Tensor) -> Result<(Tensor, StreamStats), ServeError> {
        Ok(self.stream.forward(x)?)
    }
}

/// The single mutable cell of the whole server: which model generation
/// new requests see.
#[derive(Debug)]
pub struct ModelSlot {
    cur: Swap<ServingModel>,
}

impl ModelSlot {
    /// A slot serving `model`.
    pub fn new(model: ServingModel) -> Self {
        Self {
            cur: Swap::new(model),
        }
    }

    /// The current generation, pinned: the returned `Arc` keeps serving
    /// this exact model even if a swap lands immediately after.
    pub fn get(&self) -> Arc<ServingModel> {
        self.cur.get()
    }

    /// Atomically replaces the served generation, returning the old one.
    pub fn swap(&self, model: Arc<ServingModel>) -> Arc<ServingModel> {
        self.cur.swap(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback::{TrainProgress, TrainState};
    use dropback_optim::{Optimizer, SparseDropBack};

    pub(crate) fn state_at(epoch: usize, seed: u64) -> TrainState {
        let mut net = models::mnist_100_100(seed);
        let mut opt = SparseDropBack::new(400);
        opt.step(net.store_mut(), 0.0);
        for i in 0..32 {
            net.store_mut().params_mut()[i * 97] = epoch as f32 * 0.25 + i as f32 * 0.01;
        }
        let progress = TrainProgress {
            next_epoch: epoch,
            ..TrainProgress::fresh()
        };
        TrainState::capture(&net, &opt, 0x5EED, &progress)
    }

    #[test]
    fn snapshot_reconstructs_to_the_exact_trained_params() {
        let state = state_at(3, 77);
        let model = ServingModel::from_state(&state, "/tmp/state-00000003.dbk2").unwrap();
        assert_eq!(model.name(), "mnist-100-100");
        assert_eq!(model.epoch(), 3);
        assert_eq!(model.in_dim(), 784);
        assert_eq!(model.out_dim(), 10);
        assert!(model.entries() >= 32);

        // The served forward must be bit-identical to streaming inference
        // straight off the snapshot's entries.
        let x = Tensor::filled(vec![2, 784], 0.03);
        let (served, _) = model.infer(&x).unwrap();
        let net = models::mnist_100_100(77);
        let tracked: BTreeMap<usize, f32> = state
            .entries
            .iter()
            .map(|&(i, v)| (i as usize, v))
            .collect();
        let (direct, _) = dropback::stream_mlp_forward(net.store(), &tracked, &x).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&served), bits(&direct));
    }

    #[test]
    fn conv_architectures_are_rejected_with_guidance() {
        let mut state = state_at(1, 5);
        state.model = "vgg-s-nano".into();
        let err = ServingModel::from_state(&state, "/tmp/x").unwrap_err();
        assert!(matches!(err, ServeError::UnsupportedModel(_)));
        assert!(err.to_string().contains("lenet-300-100"));
    }

    #[test]
    fn out_of_range_entries_are_a_checkpoint_error() {
        let mut state = state_at(1, 5);
        state.entries.push((10_000_000, 1.0));
        let err = ServingModel::from_state(&state, "/tmp/x").unwrap_err();
        assert!(matches!(err, ServeError::Checkpoint(_)));
    }

    #[test]
    fn slot_pins_in_flight_generations_across_a_swap() {
        let slot = ModelSlot::new(ServingModel::from_state(&state_at(1, 9), "/a").unwrap());
        let pinned = slot.get();
        assert_eq!(pinned.epoch(), 1);
        let old = slot.swap(Arc::new(
            ServingModel::from_state(&state_at(2, 9), "/b").unwrap(),
        ));
        assert_eq!(old.epoch(), 1);
        // The pinned Arc still evaluates the old generation...
        assert_eq!(pinned.epoch(), 1);
        // ...while new readers see the new one.
        assert_eq!(slot.get().epoch(), 2);
    }
}
