//! The hot-swap watcher: new snapshot on disk → new model in the slot.
//!
//! Every poll tick costs one directory listing
//! ([`dropback::CheckpointStore::latest_valid`]); only when the newest
//! committed snapshot *name* changes does the watcher pay for a full
//! [`dropback::CheckpointStore::load_latest`] — which reuses the
//! training stack's corruption fallback, so a torn or bit-rotted newest
//! file is skipped (counted, never served) and the walk lands on the
//! newest snapshot that actually validates. If that turns out to be the
//! generation already being served, the swap is a no-op and
//! `serve.swap_noop` ticks instead of `serve.swaps`.
//!
//! Counters: `serve.swaps` (generation replaced), `serve.swap_noop`
//! (newest name changed but no newer valid generation), `serve.swap_rejected`
//! (snapshots the fallback skipped as corrupt), `serve.swap_failed`
//! (valid snapshot that could not be turned into a servable model),
//! `serve.watch_errors` (poll failures, split into
//! `serve.watch_errors.io` — listing/socket-level — and
//! `serve.watch_errors.decode` — a snapshot that would not parse).
//! Gauge: `serve.model_epoch`.
//!
//! A failing poll is **not** billed a bare poll interval: consecutive
//! failures back off exponentially with seeded jitter
//! ([`crate::clock::Backoff`]), so a wedged NFS mount costs a handful of
//! log-spaced probes instead of a tight error loop, and the first
//! success snaps the cadence back to the configured interval.

use crate::clock::Backoff;
use crate::error::ServeError;
use crate::model::{ModelSlot, ServingModel};
use crate::rt::{self, Shutdown};
use dropback::CheckpointStore;
use dropback_telemetry::{Collector, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One poll step, factored out of the loop so tests can drive it
/// synchronously. Returns the path it considered, if any.
fn poll_once(
    store: &mut CheckpointStore,
    last_seen: &mut Option<PathBuf>,
    slot: &ModelSlot,
    collector: &Collector,
) -> Result<Option<PathBuf>, ServeError> {
    let Some(candidate) = store.latest_valid()? else {
        return Ok(None);
    };
    if last_seen.as_ref() == Some(&candidate) {
        return Ok(Some(candidate));
    }
    *last_seen = Some(candidate.clone());

    // The newest name changed: now (and only now) decode + CRC-validate.
    let mut tel = Telemetry::disabled();
    let loaded = store.load_latest(&mut tel)?;
    let rejected = store.take_skipped();
    collector
        .counter("serve.swap_rejected")
        .add(rejected.len() as u64);
    let Some(state) = loaded else {
        // Nothing in the directory validates; keep serving what we have.
        collector.counter("serve.swap_noop").inc();
        return Ok(Some(candidate));
    };

    let current = slot.get();
    if current.name() == state.model && current.epoch() == state.progress.next_epoch {
        // The corruption fallback walked back to the generation already
        // being served (e.g. the newest file is torn) — don't churn.
        collector.counter("serve.swap_noop").inc();
        return Ok(Some(candidate));
    }

    // Snapshots are named state-{epoch:08}.dbk2 by the store, so the
    // loaded state's epoch names its source file.
    let source = store
        .dir()
        .join(format!("state-{:08}.dbk2", state.progress.next_epoch));
    match ServingModel::from_state(&state, source) {
        Ok(model) => {
            let epoch = model.epoch();
            slot.swap(Arc::new(model));
            collector.counter("serve.swaps").inc();
            collector.gauge("serve.model_epoch").set(epoch as f64);
        }
        Err(_) => {
            collector.counter("serve.swap_failed").inc();
        }
    }
    Ok(Some(candidate))
}

/// Buckets a poll failure for the `serve.watch_errors.*` counters: I/O
/// failures (directory gone, permission flaps, network filesystems) are
/// transient and worth backing off on; anything else means a snapshot
/// reached the decoder and was refused.
fn classify(e: &ServeError) -> &'static str {
    match e {
        ServeError::Io(_) => "io",
        ServeError::Checkpoint(dropback::CheckpointError::Io(_)) => "io",
        _ => "decode",
    }
}

/// Records one poll failure and returns how long to sleep before the
/// next attempt (the backoff's jittered delay, never shorter than the
/// configured poll interval).
fn note_failure(
    e: &ServeError,
    collector: &Collector,
    backoff: &mut Backoff,
    poll: Duration,
) -> Duration {
    collector.counter("serve.watch_errors").inc();
    collector
        .counter(&format!("serve.watch_errors.{}", classify(e)))
        .inc();
    backoff.next_delay().max(poll)
}

/// Spawns the watcher thread: polls `store` every `poll`, hot-swapping
/// `slot` when a newer valid snapshot appears, until `stop` triggers.
/// Consecutive poll failures stretch the interval via seeded-jitter
/// exponential backoff; a success resets it.
///
/// `last_seen` starts at the snapshot the server booted from, so the
/// first tick does not reload it.
///
/// # Errors
///
/// Propagates the OS error if the thread cannot be created.
pub fn start(
    mut store: CheckpointStore,
    initial_source: PathBuf,
    slot: Arc<ModelSlot>,
    collector: Arc<Collector>,
    stop: Arc<Shutdown>,
    poll: Duration,
) -> std::io::Result<rt::JoinHandle> {
    rt::spawn("watcher", move || {
        let mut last_seen = Some(initial_source);
        // The backoff seed only drives retry jitter, never results; a
        // fixed constant keeps watcher timing replayable run to run.
        let mut backoff = Backoff::new(0xD0_9BAC_C0FF, poll, Duration::from_secs(30));
        let mut wait = poll;
        while !stop.wait_for(wait) {
            wait = match poll_once(&mut store, &mut last_seen, &slot, &collector) {
                Ok(_) => {
                    backoff.reset();
                    poll
                }
                Err(e) => note_failure(&e, &collector, &mut backoff, poll),
            };
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback::{FaultInjector, FaultMode, TrainProgress, TrainState};
    use dropback_nn::models;
    use dropback_optim::{Optimizer, SparseDropBack};
    use std::fs;
    use std::io::Write as _;
    use std::path::Path;

    fn state_at(epoch: usize) -> TrainState {
        let mut net = models::mnist_100_100(33);
        let mut opt = SparseDropBack::new(200);
        opt.step(net.store_mut(), 0.0);
        for i in 0..16 {
            net.store_mut().params_mut()[i * 211] = epoch as f32 + 0.5;
        }
        let progress = TrainProgress {
            next_epoch: epoch,
            ..TrainProgress::fresh()
        };
        TrainState::capture(&net, &opt, 7, &progress)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dropback-watch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Writes a snapshot file *without* the store's atomic protocol,
    /// dying mid-write: the torn file ends up visible under the real
    /// snapshot name, exactly what the fallback must refuse to serve.
    fn write_torn_snapshot(dir: &Path, epoch: usize, keep_bytes: u64) {
        let state = state_at(epoch);
        let path = dir.join(format!("state-{epoch:08}.dbk2"));
        let file = fs::File::create(&path).unwrap();
        let mut sink = FaultInjector::new(file, FaultMode::FailWriteAfter(keep_bytes));
        let _ = state.write_to(&mut sink);
        let _ = sink.flush();
    }

    #[test]
    fn newer_snapshot_swaps_and_torn_newest_is_skipped_not_served() {
        let dir = tmp_dir("swap");
        let mut store = CheckpointStore::open(&dir).unwrap().keep(10);
        let mut tel = Telemetry::disabled();
        let first = store.save(&state_at(1), &mut tel).unwrap();

        let slot = ModelSlot::new(ServingModel::from_state(&state_at(1), &first).unwrap());
        let collector = Collector::new();
        let mut last_seen = Some(first);

        // Tick with nothing new: no load, no counters.
        poll_once(&mut store, &mut last_seen, &slot, &collector).unwrap();
        assert_eq!(collector.counter("serve.swaps").get(), 0);

        // A newer valid snapshot appears → swap.
        store.save(&state_at(2), &mut tel).unwrap();
        poll_once(&mut store, &mut last_seen, &slot, &collector).unwrap();
        assert_eq!(collector.counter("serve.swaps").get(), 1);
        assert_eq!(slot.get().epoch(), 2);

        // A torn snapshot lands under the newest name → fallback walks
        // back to epoch 2, which is already serving: noop + rejected.
        write_torn_snapshot(&dir, 3, 64);
        poll_once(&mut store, &mut last_seen, &slot, &collector).unwrap();
        assert_eq!(slot.get().epoch(), 2, "torn snapshot must not be served");
        assert_eq!(collector.counter("serve.swap_noop").get(), 1);
        assert!(collector.counter("serve.swap_rejected").get() >= 1);
        assert_eq!(collector.counter("serve.swaps").get(), 1);

        // Same torn file on the next tick: name unchanged, no re-read.
        poll_once(&mut store, &mut last_seen, &slot, &collector).unwrap();
        assert_eq!(collector.counter("serve.swap_noop").get(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poll_failures_are_classified_and_backed_off() {
        use dropback::CheckpointError;
        let io_err = ServeError::Io(std::io::Error::other("mount flapped"));
        let store_io = ServeError::Checkpoint(CheckpointError::Io(std::io::Error::other("gone")));
        let decode = ServeError::Checkpoint(CheckpointError::InvalidData("bad magic".into()));
        assert_eq!(classify(&io_err), "io");
        assert_eq!(classify(&store_io), "io");
        assert_eq!(classify(&decode), "decode");

        let collector = Collector::new();
        let poll = Duration::from_millis(10);
        let mut backoff = Backoff::new(5, poll, Duration::from_secs(30));
        let mut waits = Vec::new();
        for _ in 0..5 {
            waits.push(note_failure(&io_err, &collector, &mut backoff, poll));
        }
        let decode_wait = note_failure(&decode, &collector, &mut backoff, poll);

        assert_eq!(collector.counter("serve.watch_errors").get(), 6);
        assert_eq!(collector.counter("serve.watch_errors.io").get(), 5);
        assert_eq!(collector.counter("serve.watch_errors.decode").get(), 1);
        assert!(
            waits.iter().all(|w| *w >= poll),
            "a failing poll never fires faster than the configured interval"
        );
        assert!(
            decode_wait > poll * 4,
            "six consecutive failures must stretch the interval well past \
             the base ({decode_wait:?} vs {poll:?})"
        );
    }

    #[test]
    fn a_vanished_snapshot_directory_is_a_counted_error_not_a_crash() {
        let dir = tmp_dir("vanish");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut tel = Telemetry::disabled();
        let first = store.save(&state_at(1), &mut tel).unwrap();
        let slot = ModelSlot::new(ServingModel::from_state(&state_at(1), &first).unwrap());
        let collector = Collector::new();
        let mut last_seen = Some(first);

        fs::remove_dir_all(&dir).unwrap();
        let err = poll_once(&mut store, &mut last_seen, &slot, &collector).unwrap_err();
        assert_eq!(classify(&err), "io", "missing dir is an I/O flap: {err}");
        assert_eq!(slot.get().epoch(), 1, "the serving model is untouched");
    }

    #[test]
    fn watcher_thread_swaps_live_and_exits_on_shutdown() {
        let dir = tmp_dir("live");
        let mut store = CheckpointStore::open(&dir).unwrap().keep(10);
        let mut tel = Telemetry::disabled();
        let first = store.save(&state_at(1), &mut tel).unwrap();
        let slot = Arc::new(ModelSlot::new(
            ServingModel::from_state(&state_at(1), &first).unwrap(),
        ));
        let collector = Arc::new(Collector::new());
        let stop = Arc::new(Shutdown::new());

        let handle = start(
            CheckpointStore::open(&dir).unwrap().keep(10),
            first,
            Arc::clone(&slot),
            Arc::clone(&collector),
            Arc::clone(&stop),
            Duration::from_millis(5),
        )
        .unwrap();

        store.save(&state_at(4), &mut tel).unwrap();
        // Wait (bounded) for the watcher to notice.
        for _ in 0..400 {
            if slot.get().epoch() == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(slot.get().epoch(), 4);
        assert_eq!(collector.gauge("serve.model_epoch").get(), 4.0);

        stop.trigger();
        handle.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
