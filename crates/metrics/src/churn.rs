//! Top-k accumulated-gradient set churn (Figure 2).

use dropback_optim::top_k_mask;

/// Tracks how many weights enter/leave the top-`k` accumulated-gradient set
/// each iteration during *plain SGD* training — the measurement behind the
/// paper's Figure 2, which justifies freezing the tracked set after a few
/// epochs (churn collapses to <0.04% of weights).
#[derive(Debug, Clone)]
pub struct TopKChurn {
    k: usize,
    accum: Vec<f32>,
    prev_mask: Option<Vec<bool>>,
    history: Vec<usize>,
}

impl TopKChurn {
    /// Creates a tracker over `n` weights with set size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && n > 0, "empty churn tracker");
        Self {
            k,
            accum: vec![0.0; n],
            prev_mask: None,
            history: Vec::new(),
        }
    }

    /// Folds in one iteration's gradients (scaled by `lr`, matching the
    /// accumulated `α·∂f/∂w` the paper tracks) and returns the number of
    /// weights swapped *into* the top-k set.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the tracked width.
    pub fn update(&mut self, grads: &[f32], lr: f32) -> usize {
        assert_eq!(grads.len(), self.accum.len(), "gradient width changed");
        for (a, &g) in self.accum.iter_mut().zip(grads) {
            *a += (lr * g).abs();
        }
        let mask = top_k_mask(&self.accum, self.k);
        let swaps = match &self.prev_mask {
            None => 0, // first set: nothing to compare against
            Some(prev) => mask
                .iter()
                .zip(prev)
                .filter(|&(&new, &old)| new && !old)
                .count(),
        };
        self.prev_mask = Some(mask);
        self.history.push(swaps);
        swaps
    }

    /// Per-iteration swap counts so far.
    pub fn history(&self) -> &[usize] {
        &self.history
    }

    /// The accumulated |α·g| values (Figure 1's distribution).
    pub fn accumulated(&self) -> &[f32] {
        &self.accum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_gradients_produce_zero_churn() {
        let mut c = TopKChurn::new(10, 3);
        let grads: Vec<f32> = (0..10).map(|i| if i < 3 { 1.0 } else { 0.01 }).collect();
        for _ in 0..5 {
            c.update(&grads, 0.1);
        }
        assert_eq!(c.history(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn shifting_gradients_produce_churn() {
        let mut c = TopKChurn::new(6, 2);
        c.update(&[1.0, 1.0, 0.0, 0.0, 0.0, 0.0], 1.0);
        // Overwhelm with new leaders.
        let swaps = c.update(&[0.0, 0.0, 10.0, 10.0, 0.0, 0.0], 1.0);
        assert_eq!(swaps, 2);
    }

    #[test]
    fn churn_decays_as_totals_grow() {
        // Alternating noise on top of a stable signal: once the stable
        // signal accumulates, noise stops displacing it.
        let mut c = TopKChurn::new(20, 5);
        let mut state = 1u64;
        let mut swaps_early = 0;
        let mut swaps_late = 0;
        for it in 0..200 {
            let grads: Vec<f32> = (0..20)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let noise = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
                    if i < 5 {
                        1.0 + 0.1 * noise
                    } else {
                        0.8 * noise
                    }
                })
                .collect();
            let s = c.update(&grads, 0.1);
            if it < 20 {
                swaps_early += s;
            } else if it >= 180 {
                swaps_late += s;
            }
        }
        assert!(
            swaps_late <= swaps_early,
            "late churn {swaps_late} should not exceed early churn {swaps_early}"
        );
        assert_eq!(c.history().len(), 200);
    }
}
