//! Convergence-curve statistics for comparing training rules.
//!
//! The paper's convergence claims (Figures 3 and 4) are statements about
//! curve *shape*: DropBack reaches the baseline's accuracy a bit later but
//! follows the same trajectory. These summaries quantify that.

/// Summary statistics of a validation-accuracy curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceStats {
    /// Best accuracy reached.
    pub best: f32,
    /// Epoch of the best accuracy.
    pub best_epoch: usize,
    /// Mean accuracy over the whole curve (area under the curve / length) —
    /// higher means faster learning at equal final accuracy.
    pub auc: f32,
    /// First epoch reaching 95% of the curve's own best (`None` if the
    /// curve is flat at zero).
    pub epochs_to_95: Option<usize>,
}

impl ConvergenceStats {
    /// Computes the summary of an accuracy-per-epoch curve.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn from_curve(curve: &[f32]) -> Self {
        assert!(!curve.is_empty(), "empty accuracy curve");
        let mut best = f32::NEG_INFINITY;
        let mut best_epoch = 0usize;
        for (e, &a) in curve.iter().enumerate() {
            if a > best {
                best = a;
                best_epoch = e;
            }
        }
        let auc = curve.iter().sum::<f32>() / curve.len() as f32;
        let target = 0.95 * best;
        let epochs_to_95 = if best > 0.0 {
            curve.iter().position(|&a| a >= target)
        } else {
            None
        };
        Self {
            best,
            best_epoch,
            auc,
            epochs_to_95,
        }
    }
}

/// Maximum pointwise accuracy gap between two curves of equal length —
/// small values mean the curves track each other (Figure 3's claim).
///
/// # Panics
///
/// Panics if lengths differ or either is empty.
pub fn max_curve_gap(a: &[f32], b: &[f32]) -> f32 {
    assert!(!a.is_empty(), "empty curve");
    assert_eq!(a.len(), b.len(), "curve lengths differ");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_monotone_curve() {
        let s = ConvergenceStats::from_curve(&[0.1, 0.5, 0.8, 0.9, 0.91]);
        assert_eq!(s.best, 0.91);
        assert_eq!(s.best_epoch, 4);
        assert!((s.auc - 0.642).abs() < 1e-3);
        // 95% of 0.91 = 0.8645 -> first reached at epoch 3.
        assert_eq!(s.epochs_to_95, Some(3));
    }

    #[test]
    fn flat_zero_curve_has_no_target_epoch() {
        let s = ConvergenceStats::from_curve(&[0.0, 0.0]);
        assert_eq!(s.epochs_to_95, None);
    }

    #[test]
    fn faster_learner_has_higher_auc() {
        let fast = ConvergenceStats::from_curve(&[0.8, 0.9, 0.9]);
        let slow = ConvergenceStats::from_curve(&[0.1, 0.5, 0.9]);
        assert!(fast.auc > slow.auc);
        assert_eq!(fast.best, slow.best);
    }

    #[test]
    fn gap_between_identical_curves_is_zero() {
        let c = [0.2, 0.6, 0.9];
        assert_eq!(max_curve_gap(&c, &c), 0.0);
        assert!((max_curve_gap(&c, &[0.2, 0.7, 0.85]) - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "curve lengths differ")]
    fn mismatched_lengths_panic() {
        max_curve_gap(&[0.1], &[0.1, 0.2]);
    }
}
