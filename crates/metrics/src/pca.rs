//! PCA projection of weight-trajectory snapshots (Figure 6).
//!
//! Figure 6 projects the full weight vector at a handful of training
//! checkpoints into 3-D. With `T` snapshots of dimension `D` (`T ≪ D`),
//! the principal components live in the span of the snapshots, so we
//! eigendecompose the `T×T` Gram matrix of centered snapshots (power
//! iteration with deflation) instead of the `D×D` covariance.

/// Result of [`pca_project`].
#[derive(Debug, Clone, PartialEq)]
pub struct PcaResult {
    /// `projections[t]` = the `t`-th snapshot's coordinates in the
    /// `components`-dimensional principal subspace.
    pub projections: Vec<Vec<f32>>,
    /// Fraction of total variance captured by each component.
    pub explained: Vec<f32>,
}

/// Projects `snapshots` (each a flat weight vector) onto their top
/// `components` principal directions.
///
/// # Panics
///
/// Panics if fewer than two snapshots are given, lengths differ, or
/// `components == 0`.
pub fn pca_project(snapshots: &[Vec<f32>], components: usize) -> PcaResult {
    assert!(snapshots.len() >= 2, "PCA needs at least two snapshots");
    assert!(components > 0, "need at least one component");
    let t = snapshots.len();
    let d = snapshots[0].len();
    assert!(
        snapshots.iter().all(|s| s.len() == d),
        "snapshot lengths differ"
    );
    let m = components.min(t - 1).max(1);
    // Column-center: subtract the mean snapshot.
    let mut mean = vec![0.0f64; d];
    for s in snapshots {
        for (m, &v) in mean.iter_mut().zip(s) {
            *m += v as f64 / t as f64;
        }
    }
    // Gram matrix G[i][j] = <xc_i, xc_j> (T×T).
    let mut gram = vec![vec![0.0f64; t]; t];
    for i in 0..t {
        for j in i..t {
            let mut acc = 0.0f64;
            for k in 0..d {
                acc += (snapshots[i][k] as f64 - mean[k]) * (snapshots[j][k] as f64 - mean[k]);
            }
            gram[i][j] = acc;
            gram[j][i] = acc;
        }
    }
    let trace: f64 = (0..t).map(|i| gram[i][i]).sum();
    // Power iteration with deflation for the top-m eigenpairs.
    let mut projections = vec![vec![0.0f32; m]; t];
    let mut explained = Vec::with_capacity(m);
    let mut deflated = gram.clone();
    for comp in 0..m {
        let (lambda, v) = power_iteration(&deflated, 500, comp as u64 + 1);
        // Projection of snapshot i on component = sqrt(λ)·v[i].
        let scale = lambda.max(0.0).sqrt();
        for (proj, &vi) in projections.iter_mut().zip(&v) {
            proj[comp] = (scale * vi) as f32;
        }
        explained.push(if trace > 0.0 {
            (lambda / trace) as f32
        } else {
            0.0
        });
        // Deflate: G ← G − λ v vᵀ.
        for i in 0..t {
            for j in 0..t {
                deflated[i][j] -= lambda * v[i] * v[j];
            }
        }
    }
    PcaResult {
        projections,
        explained,
    }
}

/// Dominant eigenpair of a symmetric matrix via power iteration.
fn power_iteration(a: &[Vec<f64>], iters: usize, seed: u64) -> (f64, Vec<f64>) {
    let n = a.len();
    // Deterministic pseudo-random start vector.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut next = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                next[i] += a[i][j] * v[j];
            }
        }
        lambda = next.iter().zip(&v).map(|(&x, &y)| x * y).sum();
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return (0.0, v);
        }
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }
    (lambda, v)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    for x in v {
        *x /= norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_in_high_dim_has_one_component() {
        // Snapshots along a single direction: PC1 explains everything.
        let dir: Vec<f32> = (0..50).map(|i| ((i * 13 % 7) as f32) - 3.0).collect();
        let snapshots: Vec<Vec<f32>> = (0..6)
            .map(|t| dir.iter().map(|&d| d * t as f32).collect())
            .collect();
        let r = pca_project(&snapshots, 3);
        assert!(r.explained[0] > 0.99, "{:?}", r.explained);
        assert!(r.explained[1] < 0.01);
        // Projections on PC1 are monotone in t (up to sign).
        let p: Vec<f32> = r.projections.iter().map(|p| p[0]).collect();
        let mono_up = p.windows(2).all(|w| w[1] >= w[0]);
        let mono_down = p.windows(2).all(|w| w[1] <= w[0]);
        assert!(mono_up || mono_down, "{p:?}");
    }

    #[test]
    fn preserves_pairwise_distances_for_planar_data() {
        // Points in a 2-D plane embedded in 20-D: 2 components suffice, and
        // pairwise distances in projection match the originals.
        let e1: Vec<f32> = (0..20).map(|i| if i == 3 { 1.0 } else { 0.0 }).collect();
        let e2: Vec<f32> = (0..20).map(|i| if i == 11 { 1.0 } else { 0.0 }).collect();
        let coords = [(0.0, 0.0), (1.0, 0.5), (2.0, -1.0), (0.5, 2.0)];
        let snapshots: Vec<Vec<f32>> = coords
            .iter()
            .map(|&(a, b)| (0..20).map(|i| a * e1[i] + b * e2[i]).collect::<Vec<f32>>())
            .collect();
        let r = pca_project(&snapshots, 2);
        for i in 0..4 {
            for j in i + 1..4 {
                let orig = ((coords[i].0 - coords[j].0).powi(2)
                    + (coords[i].1 - coords[j].1).powi(2))
                .sqrt();
                let proj = ((r.projections[i][0] - r.projections[j][0]).powi(2)
                    + (r.projections[i][1] - r.projections[j][1]).powi(2))
                .sqrt();
                assert!((orig - proj).abs() < 1e-3, "({i},{j}): {orig} vs {proj}");
            }
        }
    }

    #[test]
    fn explained_fractions_are_sane() {
        let snapshots: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..30).map(|i| ((t * i) as f32).sin()).collect())
            .collect();
        let r = pca_project(&snapshots, 3);
        let sum: f32 = r.explained.iter().sum();
        assert!(sum <= 1.0 + 1e-4);
        assert!(r.explained.windows(2).all(|w| w[0] >= w[1] - 1e-4));
    }

    #[test]
    #[should_panic(expected = "at least two snapshots")]
    fn single_snapshot_panics() {
        pca_project(&[vec![1.0, 2.0]], 1);
    }
}
