//! Weight-diffusion distance (Figure 5).

/// Tracks the ℓ2 distance of a weight vector from a fixed reference
/// (normally the initialization), the quantity Hoffer et al. 2017 show
/// grows logarithmically under SGD ("ultra-slow diffusion") and the paper
/// uses to explain why DropBack generalizes: its diffusion curve hugs the
/// baseline's, while zero-ing pruners jump far from init immediately.
#[derive(Debug, Clone)]
pub struct DiffusionTracker {
    w0: Vec<f32>,
    samples: Vec<(u64, f32)>,
}

impl DiffusionTracker {
    /// Creates a tracker anchored at `w0` (cloned).
    ///
    /// # Panics
    ///
    /// Panics if `w0` is empty.
    pub fn new(w0: &[f32]) -> Self {
        assert!(!w0.is_empty(), "empty reference vector");
        Self {
            w0: w0.to_vec(),
            samples: Vec::new(),
        }
    }

    /// ℓ2 distance of `w` from the anchor.
    ///
    /// # Panics
    ///
    /// Panics if `w.len()` differs from the anchor's.
    pub fn distance(&self, w: &[f32]) -> f32 {
        assert_eq!(w.len(), self.w0.len(), "weight-vector length changed");
        w.iter()
            .zip(&self.w0)
            .map(|(&a, &b)| ((a - b) as f64) * ((a - b) as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Records the distance at `iteration`.
    pub fn record(&mut self, iteration: u64, w: &[f32]) {
        let d = self.distance(w);
        self.samples.push((iteration, d));
    }

    /// All recorded `(iteration, distance)` samples.
    pub fn samples(&self) -> &[(u64, f32)] {
        &self.samples
    }

    /// Whether `iteration` falls on a log-spaced sampling grid (~`per_decade`
    /// samples per decade) — Figure 5 uses a log time axis.
    pub fn should_sample(iteration: u64, per_decade: u32) -> bool {
        if iteration == 0 {
            return true;
        }
        let log = (iteration as f64).log10();
        let slot = (log * per_decade as f64).floor();
        let prev = ((iteration - 1) as f64).max(0.1).log10();
        let prev_slot = (prev * per_decade as f64).floor();
        iteration == 1 || slot > prev_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_of_anchor_is_zero() {
        let t = DiffusionTracker::new(&[1.0, 2.0, 3.0]);
        assert_eq!(t.distance(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn distance_is_euclidean() {
        let t = DiffusionTracker::new(&[0.0, 0.0]);
        assert!((t.distance(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn record_appends() {
        let mut t = DiffusionTracker::new(&[0.0]);
        t.record(1, &[1.0]);
        t.record(10, &[2.0]);
        assert_eq!(t.samples().len(), 2);
        assert_eq!(t.samples()[1], (10, 2.0));
    }

    #[test]
    #[should_panic(expected = "length changed")]
    fn length_mismatch_panics() {
        DiffusionTracker::new(&[0.0]).distance(&[0.0, 1.0]);
    }

    #[test]
    fn log_sampling_thins_out() {
        let early: usize = (1..100)
            .filter(|&i| DiffusionTracker::should_sample(i, 8))
            .count();
        let late: usize = (1000..1100)
            .filter(|&i| DiffusionTracker::should_sample(i, 8))
            .count();
        assert!(early > late, "early {early} late {late}");
        assert!(late <= 2);
    }
}
