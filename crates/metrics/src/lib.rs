//! Analysis metrics for the DropBack reproduction.
//!
//! These implement the measurement machinery behind the paper's analysis
//! figures:
//!
//! * [`DiffusionTracker`] — ℓ2 distance of the weight vector from its
//!   initialization over training (Figure 5; the "ultra-slow diffusion"
//!   argument from Hoffer et al. 2017).
//! * [`gaussian_kde`] — kernel density estimation of the
//!   accumulated-gradient distribution (Figure 1).
//! * [`TopKChurn`] — how many weights enter/leave the top-k
//!   accumulated-gradient set per iteration (Figure 2).
//! * [`pca_project`] — PCA projection of weight-trajectory snapshots into a
//!   low-dimensional space (Figure 6), via power iteration on the snapshot
//!   Gram matrix.
//! * [`Accuracy`] helpers and compression arithmetic shared by the tables.

#![deny(missing_docs)]

mod churn;
mod convergence;
mod diffusion;
mod kde;
mod pca;
mod stats;

pub use churn::TopKChurn;
pub use convergence::{max_curve_gap, ConvergenceStats};
pub use diffusion::DiffusionTracker;
pub use kde::gaussian_kde;
pub use pca::{pca_project, PcaResult};
pub use stats::{compression_ratio, mean_and_std, Accuracy};
