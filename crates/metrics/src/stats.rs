//! Small shared statistics helpers.

/// Running classification-accuracy accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accuracy {
    correct: usize,
    total: usize,
}

impl Accuracy {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in a batch of predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn update(&mut self, predictions: &[usize], labels: &[usize]) {
        assert_eq!(predictions.len(), labels.len(), "prediction/label mismatch");
        self.correct += predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        self.total += labels.len();
    }

    /// Accuracy in `[0, 1]` (0 when empty).
    pub fn value(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f32 / self.total as f32
        }
    }

    /// Error rate in percent, as the paper's tables report.
    pub fn error_percent(&self) -> f32 {
        100.0 * (1.0 - self.value())
    }

    /// Number of examples folded in.
    pub fn count(&self) -> usize {
        self.total
    }
}

/// Weight-compression ratio as the paper's tables define it
/// (`total params / stored params`).
///
/// # Panics
///
/// Panics if `stored == 0`.
pub fn compression_ratio(total: usize, stored: usize) -> f32 {
    assert!(stored > 0, "stored weight count must be positive");
    total as f32 / stored as f32
}

/// Mean and (population) standard deviation of a slice.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn mean_and_std(values: &[f32]) -> (f32, f32) {
    assert!(!values.is_empty(), "empty slice");
    let n = values.len() as f64;
    let mean: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = values
        .iter()
        .map(|&v| (v as f64 - mean) * (v as f64 - mean))
        .sum::<f64>()
        / n;
    (mean as f32, var.sqrt() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts() {
        let mut a = Accuracy::new();
        a.update(&[1, 2, 3], &[1, 0, 3]);
        a.update(&[4], &[4]);
        assert_eq!(a.count(), 4);
        assert!((a.value() - 0.75).abs() < 1e-6);
        assert!((a.error_percent() - 25.0).abs() < 1e-4);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        assert_eq!(Accuracy::new().value(), 0.0);
    }

    #[test]
    fn compression_examples_from_paper() {
        assert!((compression_ratio(266_610, 50_000) - 5.33).abs() < 0.01);
        assert!((compression_ratio(89_610, 1_500) - 59.74).abs() < 0.01);
    }

    #[test]
    fn mean_and_std_basics() {
        let (m, s) = mean_and_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-6);
        assert!((s - 2.0).abs() < 1e-6);
    }
}
