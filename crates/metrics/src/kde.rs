//! Gaussian kernel density estimation (Figure 1).

/// Estimates the density of `samples` on `grid` points spanning the sample
/// range, using a Gaussian kernel with Silverman's rule-of-thumb bandwidth.
///
/// Returns `(xs, densities)`; densities integrate to ~1 over the grid.
///
/// # Panics
///
/// Panics if `samples` is empty or `grid < 2`.
pub fn gaussian_kde(samples: &[f32], grid: usize) -> (Vec<f32>, Vec<f32>) {
    assert!(!samples.is_empty(), "KDE of an empty sample");
    assert!(grid >= 2, "KDE needs at least two grid points");
    let n = samples.len() as f64;
    let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var: f64 = samples
        .iter()
        .map(|&v| (v as f64 - mean) * (v as f64 - mean))
        .sum::<f64>()
        / n;
    let std = var.sqrt().max(1e-9);
    // Silverman's rule of thumb.
    let h = (1.06 * std * n.powf(-0.2)).max(1e-6);
    let lo = samples.iter().cloned().fold(f32::INFINITY, f32::min) as f64 - 3.0 * h;
    let hi = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64 + 3.0 * h;
    let step = (hi - lo) / (grid - 1) as f64;
    let norm = 1.0 / (n * h * (2.0 * std::f64::consts::PI).sqrt());
    let mut xs = Vec::with_capacity(grid);
    let mut ys = Vec::with_capacity(grid);
    for g in 0..grid {
        let x = lo + g as f64 * step;
        let mut acc = 0.0f64;
        for &s in samples {
            let z = (x - s as f64) / h;
            acc += (-0.5 * z * z).exp();
        }
        xs.push(x as f32);
        ys.push((acc * norm) as f32);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_to_one() {
        let samples: Vec<f32> = (0..500)
            .map(|i| ((i * 37 % 100) as f32) / 50.0 - 1.0)
            .collect();
        let (xs, ys) = gaussian_kde(&samples, 200);
        let dx = xs[1] - xs[0];
        let integral: f32 = ys.iter().map(|&y| y * dx).sum();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn peaks_near_the_mode() {
        // Heavy spike at 0 plus light tails — like the paper's Figure 1.
        let mut samples = vec![0.0f32; 900];
        samples.extend((0..100).map(|i| (i as f32 - 50.0) / 25.0));
        let (xs, ys) = gaussian_kde(&samples, 101);
        let peak = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| xs[i])
            .unwrap();
        assert!(peak.abs() < 0.2, "peak at {peak}");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        gaussian_kde(&[], 10);
    }

    #[test]
    fn constant_samples_do_not_blow_up() {
        let (_, ys) = gaussian_kde(&[1.0; 50], 10);
        assert!(ys.iter().all(|y| y.is_finite()));
    }
}
