//! The in-memory [`Dataset`] container.

use dropback_tensor::Tensor;

/// Per-feature standardization statistics (see
/// [`Dataset::feature_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStats {
    /// Per-feature means.
    pub mean: Vec<f32>,
    /// Per-feature standard deviations (floored at 1e-6).
    pub std: Vec<f32>,
}

/// An in-memory labelled dataset.
///
/// `images` is `[n, d]` for flat (MLP) data or `[n, c, h, w]` for image
/// (convolutional) data; `labels` holds one class index per example.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the leading image dimension does not equal `labels.len()`,
    /// or if any label is `>= classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            images.shape()[0],
            labels.len(),
            "one label per image required"
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Self {
            images,
            labels,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The full image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Shape of a single example (the image shape without the batch dim).
    pub fn example_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// Number of features per example.
    pub fn example_len(&self) -> usize {
        self.example_shape().iter().product()
    }

    /// Copies examples `[start, end)` into a batch tensor
    /// (`[end-start, ...example_shape]`) plus labels.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn batch(&self, start: usize, end: usize) -> (Tensor, Vec<usize>) {
        assert!(
            start < end && end <= self.len(),
            "bad batch range {start}..{end}"
        );
        let d = self.example_len();
        let mut shape = vec![end - start];
        shape.extend_from_slice(self.example_shape());
        let images = Tensor::from_vec(shape, self.images.data()[start * d..end * d].to_vec());
        (images, self.labels[start..end].to_vec())
    }

    /// Gathers the examples at `indices` into a batch (used by the shuffled
    /// [`crate::Batcher`]).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "empty gather");
        let d = self.example_len();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "gather index {i} out of bounds");
            data.extend_from_slice(&self.images.data()[i * d..(i + 1) * d]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(self.example_shape());
        (Tensor::from_vec(shape, data), labels)
    }

    /// Per-feature mean and standard deviation over the dataset (used for
    /// input standardization).
    pub fn feature_stats(&self) -> FeatureStats {
        let d = self.example_len();
        let n = self.len() as f64;
        let mut mean = vec![0.0f64; d];
        for ex in self.images.data().chunks_exact(d) {
            for (m, &v) in mean.iter_mut().zip(ex) {
                *m += v as f64 / n;
            }
        }
        let mut var = vec![0.0f64; d];
        for ex in self.images.data().chunks_exact(d) {
            for ((s, &v), &m) in var.iter_mut().zip(ex).zip(&mean) {
                *s += (v as f64 - m) * (v as f64 - m) / n;
            }
        }
        FeatureStats {
            mean: mean.iter().map(|&m| m as f32).collect(),
            std: var.iter().map(|&v| (v.sqrt() as f32).max(1e-6)).collect(),
        }
    }

    /// Returns a standardized copy using `stats` (compute stats on the
    /// training split and reuse them on the test split).
    ///
    /// # Panics
    ///
    /// Panics if the stats' width differs from the example length.
    pub fn standardized(&self, stats: &FeatureStats) -> Dataset {
        let d = self.example_len();
        assert_eq!(stats.mean.len(), d, "stats width mismatch");
        let data: Vec<f32> = self
            .images
            .data()
            .chunks_exact(d)
            .flat_map(|ex| {
                ex.iter()
                    .zip(&stats.mean)
                    .zip(&stats.std)
                    .map(|((&v, &m), &s)| (v - m) / s)
                    .collect::<Vec<f32>>()
            })
            .collect();
        Dataset::new(
            Tensor::from_vec(self.images.shape().to_vec(), data),
            self.labels.clone(),
            self.classes,
        )
    }

    /// Splits into `([0, at), [at, n))` subsets.
    ///
    /// # Panics
    ///
    /// Panics if `at` is 0 or `>= len()`.
    pub fn split(&self, at: usize) -> (Dataset, Dataset) {
        assert!(at > 0 && at < self.len(), "split point {at} out of range");
        let d = self.example_len();
        let mut head_shape = vec![at];
        head_shape.extend_from_slice(self.example_shape());
        let mut tail_shape = vec![self.len() - at];
        tail_shape.extend_from_slice(self.example_shape());
        (
            Dataset::new(
                Tensor::from_vec(head_shape, self.images.data()[..at * d].to_vec()),
                self.labels[..at].to_vec(),
                self.classes,
            ),
            Dataset::new(
                Tensor::from_vec(tail_shape, self.images.data()[at * d..].to_vec()),
                self.labels[at..].to_vec(),
                self.classes,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            Tensor::from_fn(vec![4, 3], |i| i as f32),
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn construction_and_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.example_shape(), &[3]);
        assert_eq!(d.example_len(), 3);
    }

    #[test]
    #[should_panic(expected = "one label per image")]
    fn label_count_mismatch_panics() {
        Dataset::new(Tensor::zeros(vec![3, 2]), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_panics() {
        Dataset::new(Tensor::zeros(vec![2, 2]), vec![0, 5], 2);
    }

    #[test]
    fn batch_copies_rows() {
        let d = tiny();
        let (x, y) = d.batch(1, 3);
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(x.data(), &[3., 4., 5., 6., 7., 8.]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn gather_reorders() {
        let d = tiny();
        let (x, y) = d.gather(&[3, 0]);
        assert_eq!(x.data(), &[9., 10., 11., 0., 1., 2.]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn split_partitions() {
        let d = tiny();
        let (a, b) = d.split(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.labels(), &[1, 0, 1]);
    }

    #[test]
    fn feature_stats_and_standardization() {
        let d = Dataset::new(
            Tensor::from_vec(vec![4, 2], vec![1., 10., 3., 20., 5., 30., 7., 40.]),
            vec![0, 1, 0, 1],
            2,
        );
        let stats = d.feature_stats();
        assert!((stats.mean[0] - 4.0).abs() < 1e-5);
        assert!((stats.mean[1] - 25.0).abs() < 1e-5);
        let z = d.standardized(&stats);
        let zs = z.feature_stats();
        for m in &zs.mean {
            assert!(m.abs() < 1e-5, "{m}");
        }
        for s in &zs.std {
            assert!((s - 1.0).abs() < 1e-4, "{s}");
        }
        // Labels untouched.
        assert_eq!(z.labels(), d.labels());
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let d = Dataset::new(Tensor::filled(vec![3, 2], 5.0), vec![0, 1, 0], 2);
        let stats = d.feature_stats();
        let z = d.standardized(&stats);
        assert!(z.images().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn four_d_examples() {
        let d = Dataset::new(Tensor::zeros(vec![2, 3, 4, 4]), vec![0, 1], 2);
        assert_eq!(d.example_shape(), &[3, 4, 4]);
        let (x, _) = d.batch(0, 1);
        assert_eq!(x.shape(), &[1, 3, 4, 4]);
    }
}
