//! Shuffled mini-batch iteration.

use crate::Dataset;
use dropback_prng::Xorshift64;
use dropback_tensor::Tensor;

/// Produces shuffled mini-batches from a [`Dataset`].
///
/// Each call to [`Batcher::epoch`] reshuffles with a per-epoch stream
/// derived from the batcher's seed, so iteration order is reproducible
/// across runs but varies across epochs (matching standard SGD practice,
/// which the paper's training regime assumes).
#[derive(Debug, Clone)]
pub struct Batcher {
    batch_size: usize,
    seed: u64,
    drop_last: bool,
}

impl Batcher {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            batch_size,
            seed,
            drop_last: false,
        }
    }

    /// Drops the final short batch of each epoch (keeps batch statistics,
    /// e.g. batch norm, uniform).
    pub fn drop_last(mut self, yes: bool) -> Self {
        self.drop_last = yes;
        self
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Returns the shuffled batches of epoch `epoch` over `data`.
    pub fn epoch<'d>(&self, data: &'d Dataset, epoch: u64) -> EpochIter<'d> {
        let mut order: Vec<usize> = (0..data.len()).collect();
        // Fisher–Yates with a per-epoch stream.
        let mut rng = Xorshift64::new(self.seed.wrapping_add(epoch.wrapping_mul(0x9E37_79B9)));
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        EpochIter {
            data,
            order,
            pos: 0,
            batch_size: self.batch_size,
            drop_last: self.drop_last,
        }
    }

    /// Number of batches per epoch for a dataset of `n` examples.
    pub fn batches_per_epoch(&self, n: usize) -> usize {
        if self.drop_last {
            n / self.batch_size
        } else {
            n.div_ceil(self.batch_size)
        }
    }
}

/// Iterator over one epoch's mini-batches; see [`Batcher::epoch`].
#[derive(Debug)]
pub struct EpochIter<'d> {
    data: &'d Dataset,
    order: Vec<usize>,
    pos: usize,
    batch_size: usize,
    drop_last: bool,
}

impl Iterator for EpochIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        if self.drop_last && end - self.pos < self.batch_size {
            self.pos = self.order.len();
            return None;
        }
        let batch = self.data.gather(&self.order[self.pos..end]);
        self.pos = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Dataset {
        Dataset::new(
            Tensor::from_fn(vec![n, 2], |i| (i / 2) as f32),
            (0..n).map(|i| i % 2).collect(),
            2,
        )
    }

    #[test]
    fn covers_every_example_once() {
        let d = data(10);
        let b = Batcher::new(3, 1);
        let mut seen = vec![0usize; 10];
        for (x, _) in b.epoch(&d, 0) {
            for r in 0..x.shape()[0] {
                seen[x.row(r)[0] as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn epochs_shuffle_differently() {
        let d = data(32);
        let b = Batcher::new(32, 1);
        let (x0, _) = b.epoch(&d, 0).next().unwrap();
        let (x1, _) = b.epoch(&d, 1).next().unwrap();
        assert_ne!(x0.data(), x1.data());
    }

    #[test]
    fn same_epoch_is_reproducible() {
        let d = data(32);
        let b = Batcher::new(8, 5);
        let a: Vec<_> = b.epoch(&d, 3).map(|(x, _)| x).collect();
        let c: Vec<_> = b.epoch(&d, 3).map(|(x, _)| x).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn drop_last_truncates() {
        let d = data(10);
        let b = Batcher::new(4, 1).drop_last(true);
        let batches: Vec<_> = b.epoch(&d, 0).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(b.batches_per_epoch(10), 2);
        let b2 = Batcher::new(4, 1);
        assert_eq!(b2.batches_per_epoch(10), 3);
        assert_eq!(b2.epoch(&d, 0).count(), 3);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        Batcher::new(0, 1);
    }

    #[test]
    fn labels_travel_with_images() {
        let d = data(6);
        let b = Batcher::new(2, 9);
        for (x, y) in b.epoch(&d, 0) {
            for (r, &label) in y.iter().enumerate().take(x.shape()[0]) {
                // label parity matches the example index parity by construction
                assert_eq!(label, (x.row(r)[0] as usize) % 2);
            }
        }
    }
}
