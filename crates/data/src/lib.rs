//! Dataset substrate for the DropBack reproduction.
//!
//! The paper evaluates on MNIST and CIFAR-10. Those datasets are not
//! redistributable inside this repository, so this crate provides:
//!
//! * [`synthetic_mnist`] / [`synthetic_cifar`] — procedurally generated
//!   classification tasks with the same tensor shapes and a similar
//!   "structured signal + nuisance variation" character (class prototype
//!   patterns, per-sample translation jitter, amplitude jitter, and additive
//!   noise). All generation is seeded through `dropback-prng`, so every
//!   experiment is bit-reproducible.
//! * [`load_mnist_idx`] — a loader for the real MNIST IDX files
//!   (`train-images-idx3-ubyte` etc.); drop the four files into a directory
//!   and every experiment runs on real data instead.
//! * [`Dataset`] and [`Batcher`] — in-memory datasets and shuffled
//!   mini-batch iteration.
//!
//! Why the substitution is sound: DropBack's claims concern *which weights
//! accumulate gradient* during SGD on a non-trivial classification task —
//! the heavy-tailed accumulated-gradient distribution of Figure 1 appears
//! for any task where a subset of features carries the class signal, which
//! the synthetic generators preserve by construction.

#![deny(missing_docs)]

mod batch;
mod dataset;
mod idx;
mod synthetic;

pub use batch::Batcher;
pub use dataset::{Dataset, FeatureStats};
pub use idx::load_mnist_idx;
pub use synthetic::{synthetic_cifar, synthetic_mnist, SyntheticSpec};
