//! Loader for the real MNIST dataset in IDX (ubyte) format.
//!
//! Drop the four canonical files into a directory and point
//! [`load_mnist_idx`] at it:
//!
//! ```text
//! train-images-idx3-ubyte   train-labels-idx1-ubyte
//! t10k-images-idx3-ubyte    t10k-labels-idx1-ubyte
//! ```
//!
//! Pixels are scaled to `[0, 1]` and flattened to `[n, 784]`, matching the
//! synthetic generator's layout so experiments can swap data sources freely.

use crate::Dataset;
use dropback_tensor::Tensor;
use std::fs;
use std::io::{self, Read};
use std::path::Path;

const IMAGE_MAGIC: u32 = 0x0000_0803;
const LABEL_MAGIC: u32 = 0x0000_0801;

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_be_bytes(b))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn load_images(path: &Path) -> io::Result<(usize, usize, Vec<f32>)> {
    let mut f = io::BufReader::new(fs::File::open(path)?);
    let magic = read_u32(&mut f)?;
    if magic != IMAGE_MAGIC {
        return Err(bad(format!("bad image magic {magic:#x} in {path:?}")));
    }
    let n = read_u32(&mut f)? as usize;
    let h = read_u32(&mut f)? as usize;
    let w = read_u32(&mut f)? as usize;
    let mut bytes = vec![0u8; n * h * w];
    f.read_exact(&mut bytes)?;
    Ok((n, h * w, bytes.iter().map(|&b| b as f32 / 255.0).collect()))
}

fn load_labels(path: &Path) -> io::Result<Vec<usize>> {
    let mut f = io::BufReader::new(fs::File::open(path)?);
    let magic = read_u32(&mut f)?;
    if magic != LABEL_MAGIC {
        return Err(bad(format!("bad label magic {magic:#x} in {path:?}")));
    }
    let n = read_u32(&mut f)? as usize;
    let mut bytes = vec![0u8; n];
    f.read_exact(&mut bytes)?;
    Ok(bytes.iter().map(|&b| b as usize).collect())
}

/// Loads real MNIST from `dir`, returning `(train, test)` datasets with
/// flat `[n, 784]` images scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns an error if any of the four IDX files is missing, has a bad
/// magic number, or has mismatched image/label counts.
pub fn load_mnist_idx(dir: impl AsRef<Path>) -> io::Result<(Dataset, Dataset)> {
    let dir = dir.as_ref();
    let load_split = |imgs: &str, lbls: &str| -> io::Result<Dataset> {
        let (n, d, data) = load_images(&dir.join(imgs))?;
        let labels = load_labels(&dir.join(lbls))?;
        if labels.len() != n {
            return Err(bad(format!(
                "{imgs}: {n} images but {} labels",
                labels.len()
            )));
        }
        if labels.iter().any(|&l| l > 9) {
            return Err(bad(format!("{lbls}: label out of range")));
        }
        Ok(Dataset::new(Tensor::from_vec(vec![n, d], data), labels, 10))
    };
    let train = load_split("train-images-idx3-ubyte", "train-labels-idx1-ubyte")?;
    let test = load_split("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_idx_pair(dir: &Path, prefix: &str, n: usize) {
        let (img_name, lbl_name) = if prefix == "train" {
            ("train-images-idx3-ubyte", "train-labels-idx1-ubyte")
        } else {
            ("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")
        };
        let mut img = fs::File::create(dir.join(img_name)).unwrap();
        img.write_all(&IMAGE_MAGIC.to_be_bytes()).unwrap();
        img.write_all(&(n as u32).to_be_bytes()).unwrap();
        img.write_all(&4u32.to_be_bytes()).unwrap();
        img.write_all(&4u32.to_be_bytes()).unwrap();
        img.write_all(&vec![128u8; n * 16]).unwrap();
        let mut lbl = fs::File::create(dir.join(lbl_name)).unwrap();
        lbl.write_all(&LABEL_MAGIC.to_be_bytes()).unwrap();
        lbl.write_all(&(n as u32).to_be_bytes()).unwrap();
        lbl.write_all(&(0..n).map(|i| (i % 10) as u8).collect::<Vec<_>>())
            .unwrap();
    }

    #[test]
    fn loads_wellformed_idx() {
        let dir = std::env::temp_dir().join(format!("dropback_idx_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        write_idx_pair(&dir, "train", 6);
        write_idx_pair(&dir, "t10k", 3);
        let (tr, te) = load_mnist_idx(&dir).unwrap();
        assert_eq!(tr.len(), 6);
        assert_eq!(te.len(), 3);
        assert_eq!(tr.images().shape(), &[6, 16]);
        assert!((tr.images().data()[0] - 128.0 / 255.0).abs() < 1e-6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_an_error() {
        assert!(load_mnist_idx("/nonexistent/mnist").is_err());
    }

    #[test]
    fn bad_magic_is_an_error() {
        let dir = std::env::temp_dir().join(format!("dropback_idx_bad_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("train-images-idx3-ubyte"), [0u8; 16]).unwrap();
        fs::write(dir.join("train-labels-idx1-ubyte"), [0u8; 8]).unwrap();
        let err = load_mnist_idx(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
