//! Procedural MNIST-like and CIFAR-like dataset generators.
//!
//! Each class `c` owns a deterministic *prototype* pattern; a sample is the
//! prototype under a random integer translation, an amplitude jitter, and
//! additive Gaussian pixel noise. The class signal therefore lives in a
//! structured subset of input features — the property that produces the
//! near-zero-mass accumulated-gradient distribution DropBack exploits.

use crate::Dataset;
use dropback_prng::{BoxMuller, Xorshift128};
use dropback_tensor::Tensor;

/// Parameters of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Image channels (1 = MNIST-like, 3 = CIFAR-like).
    pub channels: usize,
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise: f32,
    /// Maximum absolute integer translation per axis.
    pub jitter: usize,
    /// Master seed; every derived stream is a pure function of this.
    pub seed: u64,
}

impl SyntheticSpec {
    /// MNIST-like defaults: 10 classes of 1×28×28 images. The noise and
    /// jitter levels are tuned so a well-trained MLP lands at a few percent
    /// validation error (like real MNIST), leaving headroom for pruning
    /// methods to differ.
    pub fn mnist(seed: u64) -> Self {
        Self {
            classes: 10,
            height: 28,
            width: 28,
            channels: 1,
            noise: 0.35,
            jitter: 2,
            seed,
        }
    }

    /// CIFAR-like defaults: 10 classes of 3×`h`×`w` images (the paper uses
    /// 32×32; the repro default is 16×16 to keep CPU training fast).
    pub fn cifar(height: usize, width: usize, seed: u64) -> Self {
        Self {
            classes: 10,
            height,
            width,
            channels: 3,
            noise: 0.55,
            jitter: 2,
            seed,
        }
    }

    fn pixels(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Margin of always-dead pixels around each image, emulating real MNIST's
/// zero borders (important for pruning studies: weights fed by dead pixels
/// carry no signal, and a realistic fraction of such weights is what gives
/// weight-budget methods their headroom).
fn dead_margin(spec: &SyntheticSpec) -> usize {
    (spec.height.min(spec.width) / 7).min(4)
}

/// Deterministic blob-field prototype for one (class, channel) pair.
fn prototype(spec: &SyntheticSpec, class: usize, channel: usize) -> Vec<f32> {
    let (h, w) = (spec.height, spec.width);
    let m = dead_margin(spec) as f32;
    let mut rng = Xorshift128::new(
        spec.seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add((class * 64 + channel) as u64 + 1),
    );
    let blobs = 5 + (class % 3); // 5–7 Gaussian blobs per prototype
    let mut field = vec![0.0f32; h * w];
    for _ in 0..blobs {
        let cx = m + 2.0 + rng.next_f32() * (w as f32 - 2.0 * m - 4.0);
        let cy = m + 2.0 + rng.next_f32() * (h as f32 - 2.0 * m - 4.0);
        let sigma = 1.5 + rng.next_f32() * 2.0;
        let amp = if rng.next_f32() < 0.5 { -1.0 } else { 1.0 };
        let inv2s2 = 1.0 / (2.0 * sigma * sigma);
        for y in 0..h {
            for x in 0..w {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                field[y * w + x] += amp * (-d2 * inv2s2).exp();
            }
        }
    }
    // Min-max normalize to [0, 1] so noise scale is meaningful.
    let lo = field.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = field.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-6);
    for v in &mut field {
        *v = (*v - lo) / span;
    }
    field
}

/// Shifts `src` (h×w) by integer `(dx, dy)`, zero-filling exposed borders.
fn shift(src: &[f32], h: usize, w: usize, dx: isize, dy: isize) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    for y in 0..h as isize {
        let sy = y - dy;
        if sy < 0 || sy >= h as isize {
            continue;
        }
        for x in 0..w as isize {
            let sx = x - dx;
            if sx < 0 || sx >= w as isize {
                continue;
            }
            out[(y * w as isize + x) as usize] = src[(sy * w as isize + sx) as usize];
        }
    }
    out
}

/// Generates `n` samples from `spec`, using `stream` to separate train/test.
fn generate(spec: &SyntheticSpec, n: usize, stream: u64, flat: bool) -> Dataset {
    assert!(n > 0, "cannot generate an empty dataset");
    let protos: Vec<Vec<Vec<f32>>> = (0..spec.classes)
        .map(|c| {
            (0..spec.channels)
                .map(|ch| prototype(spec, c, ch))
                .collect()
        })
        .collect();
    let mut rng = Xorshift128::new(spec.seed.wrapping_add(stream.wrapping_mul(0xDEAD_BEEF)));
    let mut noise = BoxMuller::new(Xorshift128::new(
        spec.seed ^ stream.wrapping_mul(0xA5A5_5A5A),
    ));
    let d = spec.pixels();
    let mut data = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    let (h, w) = (spec.height, spec.width);
    for _ in 0..n {
        let class = rng.next_u32() as usize % spec.classes;
        let j = spec.jitter as isize;
        let dx = if j > 0 {
            (rng.next_u32() as isize % (2 * j + 1)) - j
        } else {
            0
        };
        let dy = if j > 0 {
            (rng.next_u32() as isize % (2 * j + 1)) - j
        } else {
            0
        };
        let gain = 0.7 + 0.6 * rng.next_f32();
        let m = dead_margin(spec);
        for proto in protos[class].iter().take(spec.channels) {
            let shifted = shift(proto, h, w, dx, dy);
            for (i, v) in shifted.into_iter().enumerate() {
                let (y, x) = (i / w, i % w);
                // Dead border pixels stay exactly zero, like MNIST's.
                let dead = y < m || y >= h - m || x < m || x >= w - m;
                data.push(if dead {
                    0.0
                } else {
                    gain * v + spec.noise * noise.next_normal()
                });
            }
        }
        labels.push(class);
    }
    let shape = if flat {
        vec![n, d]
    } else {
        vec![n, spec.channels, h, w]
    };
    Dataset::new(Tensor::from_vec(shape, data), labels, spec.classes)
}

/// Generates `(train, test)` MNIST-like datasets of flat `[n, 784]` examples.
///
/// # Panics
///
/// Panics if either count is zero.
pub fn synthetic_mnist(n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
    let spec = SyntheticSpec::mnist(seed);
    (
        generate(&spec, n_train, 1, true),
        generate(&spec, n_test, 2, true),
    )
}

/// Generates `(train, test)` CIFAR-like datasets of `[n, 3, h, w]` examples.
///
/// # Panics
///
/// Panics if either count is zero.
pub fn synthetic_cifar(
    n_train: usize,
    n_test: usize,
    height: usize,
    width: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    let spec = SyntheticSpec::cifar(height, width, seed);
    (
        generate(&spec, n_train, 1, false),
        generate(&spec, n_test, 2, false),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_shapes() {
        let (tr, te) = synthetic_mnist(32, 16, 7);
        assert_eq!(tr.images().shape(), &[32, 784]);
        assert_eq!(te.images().shape(), &[16, 784]);
        assert_eq!(tr.classes(), 10);
    }

    #[test]
    fn cifar_shapes() {
        let (tr, te) = synthetic_cifar(8, 4, 16, 16, 7);
        assert_eq!(tr.images().shape(), &[8, 3, 16, 16]);
        assert_eq!(te.images().shape(), &[4, 3, 16, 16]);
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = synthetic_mnist(16, 1, 42);
        let (b, _) = synthetic_mnist(16, 1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn train_and_test_streams_differ() {
        let (tr, te) = synthetic_mnist(16, 16, 42);
        assert_ne!(tr.images().data(), te.images().data());
    }

    #[test]
    fn seeds_change_the_data() {
        let (a, _) = synthetic_mnist(16, 1, 1);
        let (b, _) = synthetic_mnist(16, 1, 2);
        assert_ne!(a.images().data(), b.images().data());
    }

    #[test]
    fn all_classes_appear_in_large_sample() {
        let (tr, _) = synthetic_mnist(2000, 1, 3);
        let mut seen = [false; 10];
        for &l in tr.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing classes: {seen:?}");
    }

    #[test]
    fn prototypes_are_class_distinct() {
        let spec = SyntheticSpec::mnist(9);
        let p0 = prototype(&spec, 0, 0);
        let p1 = prototype(&spec, 1, 0);
        let dist: f32 = p0
            .iter()
            .zip(&p1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "prototypes too similar: {dist}");
    }

    #[test]
    fn shift_zero_is_identity() {
        let src: Vec<f32> = (0..12).map(|v| v as f32).collect();
        assert_eq!(shift(&src, 3, 4, 0, 0), src);
    }

    #[test]
    fn shift_moves_content() {
        let mut src = vec![0.0f32; 9];
        src[4] = 1.0; // center of 3x3
        let out = shift(&src, 3, 3, 1, 0);
        assert_eq!(out[5], 1.0);
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn nearest_prototype_classifier_beats_chance() {
        // The task must be learnable: a nearest-prototype classifier on
        // clean prototypes should classify noisy samples far above 10%.
        let spec = SyntheticSpec::mnist(11);
        let m = dead_margin(&spec);
        let (h, w) = (spec.height, spec.width);
        // Mask the dead border out of the prototypes, as the generator does.
        let mask = |p: Vec<f32>| -> Vec<f32> {
            p.into_iter()
                .enumerate()
                .map(|(i, v)| {
                    let (y, x) = (i / w, i % w);
                    if y < m || y >= h - m || x < m || x >= w - m {
                        0.0
                    } else {
                        v
                    }
                })
                .collect()
        };
        let protos: Vec<Vec<f32>> = (0..10).map(|c| mask(prototype(&spec, c, 0))).collect();
        let (te, _) = synthetic_mnist(400, 1, 11);
        let mut correct = 0;
        for i in 0..te.len() {
            let (x, y) = te.batch(i, i + 1);
            let best = protos
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = a.iter().zip(x.data()).map(|(p, v)| (p - v) * (p - v)).sum();
                    let db: f32 = b.iter().zip(x.data()).map(|(p, v)| (p - v) * (p - v)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(c, _)| c)
                .unwrap();
            if best == y[0] {
                correct += 1;
            }
        }
        let acc = correct as f32 / te.len() as f32;
        assert!(acc > 0.6, "nearest-prototype accuracy only {acc}");
    }
}
