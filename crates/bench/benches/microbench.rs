//! Criterion microbenchmarks for the DropBack substrate.
//!
//! These quantify the per-operation costs behind the paper's argument:
//! regeneration vs memory reads, DropBack's step overhead vs plain SGD,
//! top-k selection, and the GEMM/conv kernels everything sits on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Keep total bench wall-clock modest on small machines.
fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
}

use dropback::prelude::*;
use dropback_prng::{regen_normal, regen_normal_fast};
use dropback_tensor::conv::{conv2d_forward, ConvGeom};
use dropback_tensor::{matmul, Tensor};

fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut state = seed.max(1);
    Tensor::from_fn(shape, |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    tune(&mut g);
    for &n in &[32usize, 128] {
        let a = rand_tensor(vec![n, n], 1);
        let b = rand_tensor(vec![n, n], 2);
        g.bench_function(format!("matmul_{n}x{n}"), |bench| {
            bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let geom = ConvGeom {
        c: 16,
        h: 16,
        w: 16,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let x = rand_tensor(vec![4, 16, 16, 16], 3);
    let w = rand_tensor(vec![32, 16 * 9], 4);
    let mut g = c.benchmark_group("conv");
    tune(&mut g);
    g.bench_function("conv2d_16ch_16x16_b4", |bench| {
        bench.iter(|| black_box(conv2d_forward(black_box(&x), black_box(&w), None, geom)))
    });
    g.finish();
}

fn bench_regen(c: &mut Criterion) {
    let mut g = c.benchmark_group("regen");
    tune(&mut g);
    // The comparison the paper's energy argument rests on: regenerating a
    // weight vs reading it from a stored table.
    let table: Vec<f32> = (0..1_000_000u64).map(|i| regen_normal(7, i)).collect();
    g.bench_function("regen_normal_1M", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1_000_000u64 {
                acc += regen_normal(7, i);
            }
            black_box(acc)
        })
    });
    g.bench_function("regen_normal_fast_1M", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1_000_000u64 {
                acc += regen_normal_fast(7, i);
            }
            black_box(acc)
        })
    });
    g.bench_function("table_read_1M", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f32;
            for &v in &table {
                acc += v;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let scores: Vec<f32> = (0..266_610u64).map(|i| regen_normal(9, i).abs()).collect();
    let mut g = c.benchmark_group("topk");
    tune(&mut g);
    g.bench_function("top_k_mask_266k_k20k", |bench| {
        bench.iter(|| black_box(dropback::optim::top_k_mask(black_box(&scores), 20_000)))
    });
    g.finish();
}

fn bench_optimizer_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_step");
    tune(&mut g);
    let build = || {
        let mut net = models::mnist_100_100(42);
        let x = rand_tensor(vec![64, 784], 5);
        let labels: Vec<usize> = (0..64).map(|i| i % 10).collect();
        let _ = net.loss_backward(&x, &labels);
        net
    };
    g.bench_function("sgd_90k", |bench| {
        bench.iter_batched(
            build,
            |mut net| {
                Sgd::new().step(net.store_mut(), 0.1);
                black_box(net.store().params()[0])
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("dropback_90k_k20k", |bench| {
        bench.iter_batched(
            build,
            |mut net| {
                DropBack::new(20_000).step(net.store_mut(), 0.1);
                black_box(net.store().params()[0])
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("dropback_sparse_90k_k20k", |bench| {
        bench.iter_batched(
            build,
            |mut net| {
                SparseDropBack::new(20_000).step(net.store_mut(), 0.1);
                black_box(net.store().params()[0])
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_train_step");
    tune(&mut g);
    let x = rand_tensor(vec![64, 784], 6);
    let labels: Vec<usize> = (0..64).map(|i| i % 10).collect();
    g.bench_function("mnist_100_100_fwd_bwd_b64", |bench| {
        let mut net = models::mnist_100_100(42);
        bench.iter(|| black_box(net.loss_backward(black_box(&x), black_box(&labels))))
    });
    let xc = rand_tensor(vec![8, 3, 16, 16], 7);
    let labels_c: Vec<usize> = (0..8).map(|i| i % 10).collect();
    g.bench_function("vgg_s_nano_fwd_bwd_b8", |bench| {
        let mut net = models::vgg_s_nano(42);
        bench.iter(|| black_box(net.loss_backward(black_box(&xc), black_box(&labels_c))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_conv,
    bench_regen,
    bench_topk,
    bench_optimizer_step,
    bench_train_step
);
criterion_main!(benches);
