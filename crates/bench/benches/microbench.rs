//! Dependency-free microbenchmarks for the DropBack substrate
//! (`cargo bench -p dropback-bench`).
//!
//! These quantify the per-operation costs behind the paper's argument:
//! regeneration vs memory reads, DropBack's step overhead vs plain SGD,
//! top-k selection, the GEMM/conv kernels everything sits on, and the
//! telemetry layer's disabled-span overhead (which must be negligible).
//!
//! A hand-rolled harness replaces criterion so the workspace builds
//! offline: each benchmark warms up, then runs timed iterations until a
//! wall-clock budget is spent, reporting min/mean/p50/p90 from the raw
//! samples. Set `DROPBACK_TELEMETRY=bench.jsonl` to capture every result
//! as a structured event.

use dropback::prelude::*;
use dropback_bench::{telemetry_from_env, Table};
use dropback_prng::{regen_normal, regen_normal_fast};
use dropback_tensor::conv::{conv2d_forward, ConvGeom};
use dropback_tensor::{matmul, Tensor};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration wall-clock samples for one benchmark.
struct BenchResult {
    name: String,
    iters: usize,
    min_ns: u64,
    mean_ns: u64,
    p50_ns: u64,
    p90_ns: u64,
}

/// Runs `f` repeatedly: a short warm-up, then timed iterations until
/// `budget` is spent (at least `MIN_ITERS`, at most `MAX_ITERS`).
fn bench(name: &str, budget: Duration, mut f: impl FnMut()) -> BenchResult {
    const MIN_ITERS: usize = 5;
    const MAX_ITERS: usize = 200;
    // Warm-up: two unmeasured runs (page-in, branch predictors, allocator).
    f();
    f();
    let mut samples: Vec<u64> = Vec::new();
    let started = Instant::now();
    while (samples.len() < MIN_ITERS || started.elapsed() < budget) && samples.len() < MAX_ITERS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let n = samples.len();
    let pct = |p: f64| samples[(((n - 1) as f64) * p).round() as usize];
    BenchResult {
        name: name.to_string(),
        iters: n,
        min_ns: samples[0],
        mean_ns: (samples.iter().sum::<u64>() / n as u64),
        p50_ns: pct(0.50),
        p90_ns: pct(0.90),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut state = seed.max(1);
    Tensor::from_fn(shape, |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
    })
}

fn main() {
    let budget = Duration::from_millis(dropback_bench::env_usize("DROPBACK_BENCH_MS", 500) as u64);
    let mut results: Vec<BenchResult> = Vec::new();

    // GEMM kernels.
    for &n in &[32usize, 128] {
        let a = rand_tensor(vec![n, n], 1);
        let b = rand_tensor(vec![n, n], 2);
        results.push(bench(&format!("gemm/matmul_{n}x{n}"), budget, || {
            black_box(matmul(black_box(&a), black_box(&b)));
        }));
    }

    // Convolution.
    {
        let geom = ConvGeom {
            c: 16,
            h: 16,
            w: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
            dilation: 1,
        };
        let x = rand_tensor(vec![4, 16, 16, 16], 3);
        let w = rand_tensor(vec![32, 16 * 9], 4);
        results.push(bench("conv/conv2d_16ch_16x16_b4", budget, || {
            black_box(conv2d_forward(black_box(&x), black_box(&w), None, geom));
        }));
    }

    // Regeneration vs a stored-table read: the paper's energy argument.
    {
        const N: u64 = 200_000;
        let table: Vec<f32> = (0..N).map(|i| regen_normal(7, i)).collect();
        results.push(bench("regen/regen_normal_200k", budget, || {
            let mut acc = 0.0f32;
            for i in 0..N {
                acc += regen_normal(7, i);
            }
            black_box(acc);
        }));
        results.push(bench("regen/regen_normal_fast_200k", budget, || {
            let mut acc = 0.0f32;
            for i in 0..N {
                acc += regen_normal_fast(7, i);
            }
            black_box(acc);
        }));
        results.push(bench("regen/table_read_200k", budget, || {
            let mut acc = 0.0f32;
            for &v in &table {
                acc += v;
            }
            black_box(acc);
        }));
    }

    // Top-k selection at the paper's LeNet scale.
    {
        let scores: Vec<f32> = (0..266_610u64).map(|i| regen_normal(9, i).abs()).collect();
        results.push(bench("topk/top_k_mask_266k_k20k", budget, || {
            black_box(dropback::optim::top_k_mask(black_box(&scores), 20_000));
        }));
    }

    // Optimizer steps on a 90k-parameter store with fresh gradients.
    {
        let build = || {
            let mut net = models::mnist_100_100(42);
            let x = rand_tensor(vec![64, 784], 5);
            let labels: Vec<usize> = (0..64).map(|i| i % 10).collect();
            let _ = net.loss_backward(&x, &labels);
            net
        };
        let mut net = build();
        results.push(bench("optimizer/sgd_90k", budget, || {
            Sgd::new().step(net.store_mut(), 0.1);
            black_box(net.store().params()[0]);
        }));
        let mut net = build();
        results.push(bench("optimizer/dropback_90k_k20k", budget, || {
            DropBack::new(20_000).step(net.store_mut(), 0.1);
            black_box(net.store().params()[0]);
        }));
        let mut net = build();
        results.push(bench("optimizer/dropback_sparse_90k_k20k", budget, || {
            SparseDropBack::new(20_000).step(net.store_mut(), 0.1);
            black_box(net.store().params()[0]);
        }));
    }

    // Full forward+backward training steps.
    {
        let x = rand_tensor(vec![64, 784], 6);
        let labels: Vec<usize> = (0..64).map(|i| i % 10).collect();
        let mut net = models::mnist_100_100(42);
        results.push(bench("train/mnist_100_100_fwd_bwd_b64", budget, || {
            black_box(net.loss_backward(black_box(&x), black_box(&labels)));
        }));
        let xc = rand_tensor(vec![8, 3, 16, 16], 7);
        let labels_c: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let mut net = models::vgg_s_nano(42);
        results.push(bench("train/vgg_s_nano_fwd_bwd_b8", budget, || {
            black_box(net.loss_backward(black_box(&xc), black_box(&labels_c)));
        }));
    }

    // Telemetry overhead: a disabled span must cost one atomic load.
    {
        dropback::telemetry::set_enabled(false);
        results.push(bench("telemetry/span_disabled_100k", budget, || {
            for _ in 0..100_000 {
                let _s = dropback::telemetry::Span::enter("bench-noop");
                black_box(&_s);
            }
        }));
    }

    let mut t = Table::new(&["benchmark", "iters", "min", "mean", "p50", "p90"]);
    for r in &results {
        t.row(&[
            &r.name,
            &r.iters,
            &fmt_ns(r.min_ns),
            &fmt_ns(r.mean_ns),
            &fmt_ns(r.p50_ns),
            &fmt_ns(r.p90_ns),
        ]);
    }
    println!("{}", t.render());

    let mut telemetry = telemetry_from_env();
    for r in &results {
        telemetry.emit(
            Event::new("bench")
                .with("name", r.name.as_str())
                .with("iters", r.iters)
                .with("min_ns", r.min_ns)
                .with("mean_ns", r.mean_ns)
                .with("p50_ns", r.p50_ns)
                .with("p90_ns", r.p90_ns),
        );
    }
    telemetry.flush();
}
