//! Figure 3 — rate of convergence on LeNet-300-100: DropBack vs the
//! unconstrained baseline (validation accuracy per epoch).
//!
//! The paper's point: despite tracking far fewer parameters, DropBack's
//! convergence curve tracks the baseline's, with final accuracies within
//! ~1% of each other.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_fig3
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, sparkline, Table};

fn main() {
    banner(
        "Figure 3",
        "LeNet-300-100 convergence: DropBack vs baseline",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 12);
    let n_train = env_usize("DROPBACK_TRAIN", 4000);
    let n_test = env_usize("DROPBACK_TEST", 1000);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let base = runners::run_mnist(
        models::lenet_300_100(seed()),
        Sgd::new(),
        &train,
        &test,
        epochs,
    );
    let db = runners::run_mnist(
        models::lenet_300_100(seed()),
        DropBack::new(20_000),
        &train,
        &test,
        epochs,
    );

    let base_curve: Vec<f32> = base.val_curve().iter().map(|&(_, a)| a).collect();
    let db_curve: Vec<f32> = db.val_curve().iter().map(|&(_, a)| a).collect();
    println!("validation accuracy per epoch:");
    println!(
        "  baseline  {}  (final {:.4})",
        sparkline(&base_curve),
        base_curve.last().unwrap()
    );
    println!(
        "  dropback  {}  (final {:.4})",
        sparkline(&db_curve),
        db_curve.last().unwrap()
    );

    let mut t = Table::new(&["epoch", "baseline", "dropback 20k"]);
    for (b, d) in base.val_curve().iter().zip(db.val_curve()) {
        t.row(&[&b.0, &format!("{:.4}", b.1), &format!("{:.4}", d.1)]);
    }
    println!("{}", t.render());

    let gap = (base.best_val_acc - db.best_val_acc).abs();
    println!(
        "best-accuracy gap: {:.3} (paper: final accuracies within 1% of each other)",
        gap
    );
    assert!(
        gap < 0.08,
        "DropBack diverged from baseline convergence: gap {gap}"
    );
    println!("shape check: PASS — similar convergence behaviour at 13.3x compression.");
}
