//! §1/§2 energy claims — the quantitative motivation of the paper:
//!
//! * a 32-bit DRAM access costs ~700× a 32-bit FLOP (640 pJ vs 0.9 pJ);
//! * regenerating an init value with xorshift costs ~1.5 pJ, 427× less
//!   than fetching it from DRAM;
//! * DropBack therefore cuts weight-memory energy during training roughly
//!   in proportion to its compression ratio.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_energy
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, Table};

fn main() {
    banner(
        "Energy model",
        "45nm per-access energy and training traffic",
    );
    let m = EnergyModel::paper_45nm();

    let mut consts = Table::new(&["quantity", "paper", "model"]);
    consts.row(&[
        &"DRAM 32-bit access",
        &"640 pJ",
        &format!("{} pJ", m.dram_access_pj),
    ]);
    consts.row(&[&"32-bit FLOP", &"0.9 pJ", &format!("{} pJ", m.flop_pj)]);
    consts.row(&[
        &"xorshift regeneration (6 int + 1 fp)",
        &"~1.5 pJ",
        &format!("{:.2} pJ", m.regen_pj()),
    ]);
    consts.row(&[
        &"DRAM / FLOP ratio",
        &"700x",
        &format!("{:.0}x", m.dram_vs_flop()),
    ]);
    consts.row(&[
        &"DRAM / regeneration ratio",
        &"427x",
        &format!("{:.0}x", m.regen_advantage()),
    ]);
    println!("{}", consts.render());

    println!("per-training-step weight-memory energy (paper models):");
    let mut t = Table::new(&[
        "model",
        "scheme",
        "DRAM reads",
        "DRAM writes",
        "regens",
        "energy/step",
        "vs baseline",
    ]);
    for (model, params, k) in [
        ("LeNet-300-100", 266_610u64, 20_000u64),
        ("MNIST-100-100", 89_610, 20_000),
        ("MNIST-100-100 @1.5k", 89_610, 1_500),
        ("VGG-S", 15_000_000, 3_000_000),
        ("WRN-28-10", 36_000_000, 8_000_000),
    ] {
        let base = TrainingTraffic::baseline(params);
        let db = TrainingTraffic::dropback(params, k);
        let bs = base.step();
        let ds = db.step();
        t.row(&[
            &model,
            &"baseline SGD",
            &bs.dram_reads,
            &bs.dram_writes,
            &bs.regens,
            &format!("{:.2} µJ", bs.energy_pj(&m) / 1e6),
            &"1.0x",
        ]);
        t.row(&[
            &"",
            &format!("DropBack {k}"),
            &ds.dram_reads,
            &ds.dram_writes,
            &ds.regens,
            &format!("{:.2} µJ", ds.energy_pj(&m) / 1e6),
            &format!("{:.1}x less", db.advantage_over(&base, &m)),
        ]);
    }
    println!("{}", t.render());

    println!("inference (forward-only) weight energy:");
    let mut t2 = Table::new(&["model", "dense", "dropback", "advantage"]);
    for (model, params, k) in [
        ("MNIST-100-100 @1.5k", 89_610u64, 1_500u64),
        ("LeNet-300-100 @20k", 266_610, 20_000),
    ] {
        let dense = TrainingTraffic::baseline(params).inference();
        let db = TrainingTraffic::dropback(params, k).inference();
        t2.row(&[
            &model,
            &format!("{:.2} µJ", dense.energy_pj(&m) / 1e6),
            &format!("{:.2} µJ", db.energy_pj(&m) / 1e6),
            &format!("{:.1}x", dense.energy_pj(&m) / db.energy_pj(&m)),
        ]);
    }
    println!("{}", t2.render());
    println!(
        "shape check: regeneration beats DRAM by ~427x per access, so DropBack's training\n\
         energy advantage approaches its compression ratio for memory-bound models."
    );
}
