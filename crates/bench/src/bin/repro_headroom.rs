//! §6 headline — "DropBack can be used to train networks 5×–10× larger
//! than currently possible with typical hardware": sweep the on-chip
//! weight SRAM of an edge accelerator and report the largest model whose
//! *tracked set* stays resident, dense vs DropBack.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_headroom
//! ```

use dropback::energy::{lenet_300_100_layers, Accelerator, EnergyModel};
use dropback_bench::{banner, Table};

fn main() {
    banner("§6 headroom", "max trainable model vs on-chip weight SRAM");
    let mut t = Table::new(&[
        "SRAM",
        "dense max (weights)",
        "DropBack 5x",
        "DropBack 10x",
        "DropBack 13.3x (paper's 20k point)",
    ]);
    for kib in [64u64, 256, 1024, 4096] {
        let acc = Accelerator {
            sram_bytes: kib * 1024,
            word_bytes: 4,
            model: EnergyModel::paper_45nm(),
            regen_unit: true,
        };
        t.row(&[
            &format!("{kib} KiB"),
            &acc.max_trainable_weights(1.0),
            &acc.max_trainable_weights(5.0),
            &acc.max_trainable_weights(10.0),
            &acc.max_trainable_weights(13.33),
        ]);
    }
    println!("{}", t.render());

    // Concrete example: LeNet-300-100 on a 256 KiB device.
    let acc = Accelerator::edge_256k();
    let layers = lenet_300_100_layers();
    let total: u64 = layers.iter().map(|l| l.weights).sum();
    println!(
        "LeNet-300-100 has {total} weights; a 256 KiB device holds {} words.\n\
         Dense training spills to DRAM ({:.1} µJ/step); DropBack at 20k tracked\n\
         weights stays resident ({:.1} µJ/step) — it is the difference between\n\
         'cannot train on-device' and 'trains in on-chip SRAM'.",
        acc.sram_words(),
        acc.training_step(&layers, total, 1).total_pj() / 1e6,
        acc.training_step(&layers, 20_000, 1).total_pj() / 1e6,
    );
    assert!(acc.max_trainable_weights(10.0) == 10 * acc.max_trainable_weights(1.0));
    println!("\nshape check: PASS — trainable model size scales linearly with compression.");
}
