//! Figure 2 — number of weights entering/leaving the top-2k
//! accumulated-gradient set, first 10 mini-batches vs the rest.
//!
//! The paper uses this to justify freezing the tracked set: churn collapses
//! from hundreds of swaps in the first iterations to a trickle (<0.04% of
//! weights) afterwards.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_fig2
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, sparkline};

fn main() {
    banner(
        "Figure 2",
        "top-2k set churn per iteration (MNIST-100-100, SGD)",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 6);
    let n_train = env_usize("DROPBACK_TRAIN", 3000);
    let (train, _) = runners::mnist_data(n_train, 100, seed());

    let mut net = models::mnist_100_100(seed());
    let mut churn = TopKChurn::new(net.num_params(), 2_000);
    let mut opt = Sgd::new();
    let schedule = LrSchedule::paper_mnist(epochs);
    let batcher = Batcher::new(64, 0x5EED);
    for epoch in 0..epochs {
        let lr = schedule.at(epoch);
        for (x, labels) in batcher.epoch(&train, epoch as u64) {
            let _ = net.loss_backward(&x, &labels);
            churn.update(net.store().grads(), lr);
            opt.step(net.store_mut(), lr);
        }
    }
    let hist = churn.history();
    let (first, rest) = hist.split_at(10.min(hist.len()));
    println!("first 10 iterations (paper: up to ~2000 swaps, falling fast):");
    println!("  {:?}", first);
    let late: Vec<f32> = rest.iter().map(|&s| s as f32).collect();
    let late_mean = if late.is_empty() {
        0.0
    } else {
        late.iter().sum::<f32>() / late.len() as f32
    };
    let late_max = rest.iter().copied().max().unwrap_or(0);
    println!(
        "remaining {} iterations (paper: noise of <0.04% of weights ≈ <36 swaps):",
        rest.len()
    );
    println!("  mean swaps/iter: {late_mean:.1}   max: {late_max}");
    if late.len() >= 60 {
        println!("  {}", sparkline(&late[..60]));
    }
    let early_mean = first.iter().sum::<usize>() as f32 / first.len().max(1) as f32;
    println!(
        "\nshape check: early churn ({early_mean:.0}/iter) should exceed late churn\n\
         ({late_mean:.1}/iter) by a large factor — the set stabilizes, enabling freezing."
    );
    assert!(
        early_mean > late_mean * 2.0,
        "churn did not decay: early {early_mean}, late {late_mean}"
    );
    println!("PASS");
}
