//! §3 "Tracked weight set freezing" / "Effects of freezing" — sweep the
//! freeze epoch at low and high compression. The paper: freezing early has
//! little effect at modest compression but costs accuracy at extreme
//! compression ratios.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_ablation_freeze
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

fn main() {
    banner("Ablation (§3)", "freeze-epoch sweep (MNIST-100-100)");
    let epochs = env_usize("DROPBACK_EPOCHS", 12);
    let n_train = env_usize("DROPBACK_TRAIN", 4000);
    let n_test = env_usize("DROPBACK_TEST", 1000);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let freezes: [Option<usize>; 4] = [Some(1), Some(3), Some(6), None];
    let mut table = Table::new(&["budget", "freeze@1", "freeze@3", "freeze@6", "never"]);
    let mut per_budget: Vec<(usize, Vec<f32>)> = Vec::new();
    for k in [20_000usize, 1_500] {
        let mut errs = Vec::new();
        for fe in freezes {
            let mut db = DropBack::new(k);
            if let Some(f) = fe {
                db = db.freeze_after(f);
            }
            let report =
                runners::run_mnist(models::mnist_100_100(seed()), db, &train, &test, epochs);
            errs.push(report.best_val_error_percent());
        }
        table.row(&[
            &format!("{k}"),
            &format!("{:.2}%", errs[0]),
            &format!("{:.2}%", errs[1]),
            &format!("{:.2}%", errs[2]),
            &format!("{:.2}%", errs[3]),
        ]);
        per_budget.push((k, errs));
    }
    println!("{}", table.render());
    let low_comp_spread = {
        let e = &per_budget[0].1;
        e.iter().cloned().fold(f32::MIN, f32::max) - e.iter().cloned().fold(f32::MAX, f32::min)
    };
    let high_comp_spread = {
        let e = &per_budget[1].1;
        e.iter().cloned().fold(f32::MIN, f32::max) - e.iter().cloned().fold(f32::MAX, f32::min)
    };
    println!(
        "error spread across freeze epochs: {low_comp_spread:.2}% at 4.5x compression vs\n\
         {high_comp_spread:.2}% at 60x — the paper: freezing early \"has little effect\" at\n\
         small ratios but costs accuracy at very high compression."
    );
}
