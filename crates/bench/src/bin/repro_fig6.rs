//! Figure 6 — evolution of the weight vector under SGD projected into 3-D
//! by PCA, for DropBack, baseline, magnitude pruning, and variational
//! dropout.
//!
//! The paper's shape: DropBack's trajectory stays close to the baseline's
//! in principal-component space; magnitude pruning and variational dropout
//! diverge significantly.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_fig6
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

/// Extracts the *weight* parameters only — variational-dropout models carry
/// interleaved `log_sigma2` ranges whose −8 init would dominate the PCA
/// (the paper projects weight space).
fn weights_only(ps: &ParamStore) -> Vec<f32> {
    let mut out = Vec::new();
    for r in ps.ranges() {
        if !r.name().contains("log_sigma2") {
            out.extend_from_slice(&ps.params()[r.start()..r.end()]);
        }
    }
    out
}

/// Probe capturing periodic weight snapshots.
struct SnapshotProbe {
    every: u64,
    snapshots: Vec<Vec<f32>>,
}

impl StepProbe for SnapshotProbe {
    fn after_step(&mut self, iteration: u64, ps: &ParamStore) {
        if iteration.is_multiple_of(self.every) {
            self.snapshots.push(weights_only(ps));
        }
    }
}

fn trajectory(
    net: Network,
    opt: impl Optimizer,
    kl: Option<KlAnneal>,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    every: u64,
) -> Vec<Vec<f32>> {
    // At construction params == regenerated inits, so this snapshots W(0).
    let mut probe = SnapshotProbe {
        every,
        snapshots: vec![weights_only(net.store())],
    };
    let mut cfg = TrainConfig::new(epochs, 64)
        .lr(LrSchedule::Constant(0.1))
        .patience(None);
    if let Some(a) = kl {
        cfg = cfg.kl_anneal(a);
    }
    let _ = Trainer::new(cfg).run_probed(net, opt, train, test, &mut probe);
    probe.snapshots
}

fn main() {
    banner(
        "Figure 6",
        "PCA projection of weight evolution (MNIST-100-100)",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 4);
    let n_train = env_usize("DROPBACK_TRAIN", 2000);
    let (train, test) = runners::mnist_data(n_train, 400, seed());
    let every = ((n_train / 64) * epochs / 8).max(1) as u64; // ~8 snapshots/run

    let runs: Vec<(&str, Vec<Vec<f32>>)> = vec![
        (
            "baseline",
            trajectory(
                models::mnist_100_100(seed()),
                Sgd::new(),
                None,
                &train,
                &test,
                epochs,
                every,
            ),
        ),
        (
            "dropback 2k",
            trajectory(
                models::mnist_100_100(seed()),
                DropBack::new(2_000),
                None,
                &train,
                &test,
                epochs,
                every,
            ),
        ),
        (
            "dropback 10k",
            trajectory(
                models::mnist_100_100(seed()),
                DropBack::new(10_000),
                None,
                &train,
                &test,
                epochs,
                every,
            ),
        ),
        (
            "mag prune .75",
            trajectory(
                models::mnist_100_100(seed()),
                MagnitudePruning::new(0.75),
                None,
                &train,
                &test,
                epochs,
                every,
            ),
        ),
        (
            "var dropout",
            trajectory(
                models::mnist_100_100_vd(seed()),
                Sgd::new(),
                Some(KlAnneal::new(2, 1e-3)),
                &train,
                &test,
                epochs,
                every,
            ),
        ),
    ];

    // Joint PCA over all trajectories (vd has extra log-sigma params; project
    // on the common prefix = the weight parameters shared by all models).
    let min_len = runs.iter().map(|(_, s)| s[0].len()).min().unwrap();
    let mut all: Vec<Vec<f32>> = Vec::new();
    let mut offsets = Vec::new();
    for (_, snaps) in &runs {
        offsets.push(all.len());
        for s in snaps {
            all.push(s[..min_len].to_vec());
        }
    }
    let pca = pca_project(&all, 3);
    println!(
        "explained variance by top-3 PCs: {:?}",
        pca.explained
            .iter()
            .map(|e| format!("{e:.3}"))
            .collect::<Vec<_>>()
    );
    let mut t = Table::new(&[
        "method",
        "endpoint (PC1, PC2, PC3)",
        "dist from baseline endpoint",
    ]);
    let base_end = {
        let (_, snaps) = &runs[0];
        pca.projections[offsets[0] + snaps.len() - 1].clone()
    };
    let mut dists = Vec::new();
    for (i, (name, snaps)) in runs.iter().enumerate() {
        let end = &pca.projections[offsets[i] + snaps.len() - 1];
        let d: f32 = end
            .iter()
            .zip(&base_end)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        dists.push((name.to_string(), d));
        t.row(&[
            name,
            &format!("({:.1}, {:.1}, {:.1})", end[0], end[1], end[2]),
            &format!("{d:.2}"),
        ]);
    }
    println!("{}", t.render());
    println!("trajectories (PC1 coordinate per snapshot):");
    for (i, (name, snaps)) in runs.iter().enumerate() {
        let pc1: Vec<String> = (0..snaps.len())
            .map(|j| format!("{:.1}", pca.projections[offsets[i] + j][0]))
            .collect();
        println!("  {:<14} {}", name, pc1.join(" → "));
    }

    let d = |n: &str| dists.iter().find(|(name, _)| name == n).unwrap().1;
    println!(
        "\nshape check: dropback endpoints should lie closer to the baseline endpoint\n\
         than magnitude pruning and variational dropout do."
    );
    assert!(
        d("dropback 10k") < d("mag prune .75"),
        "dropback 10k ({}) should be closer than magnitude pruning ({})",
        d("dropback 10k"),
        d("mag prune .75")
    );
    assert!(
        d("dropback 10k") < d("var dropout"),
        "dropback 10k ({}) should be closer than variational dropout ({})",
        d("dropback 10k"),
        d("var dropout")
    );
    println!("PASS");
}
