//! Table 3 — CIFAR-10 compression/accuracy on VGG-S, DenseNet, and
//! WRN-28-10 (nano versions, synthetic CIFAR): DropBack at the paper's
//! compression ratios vs variational dropout, magnitude pruning, and
//! network slimming.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_table3
//! ```

use dropback::nn::BatchNorm;
use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

/// One experiment row: which rule to run and what the paper reported.
enum Rule {
    Baseline,
    DropBackRatio(f32),
    VarDrop,
    Magnitude(f32),
    Slimming(f32),
}

struct Row {
    rule: Rule,
    label: &'static str,
    paper_err: &'static str,
    paper_comp: &'static str,
}

fn gamma_ranges(net: &Network) -> Vec<dropback::nn::ParamRange> {
    net.param_ranges()
        .into_iter()
        .filter(|r| r.name().ends_with(".gamma"))
        .collect()
}

// BatchNorm is referenced for the doc link above; silence the lint cheaply.
#[allow(dead_code)]
fn _bn_marker(_: &BatchNorm) {}

fn main() {
    banner("Table 3", "CIFAR-10 nano models: compression vs error");
    let epochs = env_usize("DROPBACK_EPOCHS", 8);
    let n_train = env_usize("DROPBACK_TRAIN", 1500);
    let n_test = env_usize("DROPBACK_TEST", 400);
    let hw = dropback::nn::models::CIFAR_NANO_HW;
    let (train, test) = synthetic_cifar(n_train, n_test, hw, hw, seed());

    type Ctor = fn(u64) -> Network;
    let vgg: Ctor = models::vgg_s_nano;
    let vgg_vd: Ctor = models::vgg_s_nano_vd;
    let dense: Ctor = models::densenet_nano;
    let dense_vd: Ctor = models::densenet_nano_vd;
    let wrn: Ctor = |s| models::wrn_nano(s, 1);
    let wrn_vd: Ctor = |s| models::wrn_nano_vd(s, 1);

    let suites: [(&str, Ctor, Ctor, Vec<Row>); 3] = [
        (
            "VGG-S (nano)",
            vgg,
            vgg_vd,
            vec![
                Row {
                    rule: Rule::Baseline,
                    label: "Baseline",
                    paper_err: "10.08%",
                    paper_comp: "1x",
                },
                Row {
                    rule: Rule::DropBackRatio(3.0),
                    label: "DropBack 3x",
                    paper_err: "9.75%",
                    paper_comp: "3x",
                },
                Row {
                    rule: Rule::DropBackRatio(5.0),
                    label: "DropBack 5x",
                    paper_err: "9.90%",
                    paper_comp: "5x",
                },
                Row {
                    rule: Rule::DropBackRatio(20.0),
                    label: "DropBack 20x",
                    paper_err: "13.49%",
                    paper_comp: "20x",
                },
                Row {
                    rule: Rule::DropBackRatio(30.0),
                    label: "DropBack 30x",
                    paper_err: "20.85%",
                    paper_comp: "30x",
                },
                Row {
                    rule: Rule::VarDrop,
                    label: "Var. Dropout",
                    paper_err: "13.50%",
                    paper_comp: "3.4x",
                },
                Row {
                    rule: Rule::Magnitude(0.80),
                    label: "Mag Pruning .80",
                    paper_err: "9.42%",
                    paper_comp: "5x",
                },
                Row {
                    rule: Rule::Slimming(0.74),
                    label: "Slimming",
                    paper_err: "11.08%",
                    paper_comp: "3.8x",
                },
            ],
        ),
        (
            "Densenet (nano)",
            dense,
            dense_vd,
            vec![
                Row {
                    rule: Rule::Baseline,
                    label: "Baseline",
                    paper_err: "6.48%",
                    paper_comp: "1x",
                },
                Row {
                    rule: Rule::DropBackRatio(4.5),
                    label: "DropBack 4.5x",
                    paper_err: "5.86%",
                    paper_comp: "4.5x",
                },
                Row {
                    rule: Rule::DropBackRatio(27.0),
                    label: "DropBack 27x",
                    paper_err: "9.42%",
                    paper_comp: "27x",
                },
                Row {
                    rule: Rule::VarDrop,
                    label: "Var. Dropout",
                    paper_err: "90%",
                    paper_comp: "N/A",
                },
                Row {
                    rule: Rule::Magnitude(0.75),
                    label: "Mag Pruning .75",
                    paper_err: "6.41%",
                    paper_comp: "4x",
                },
                Row {
                    rule: Rule::Slimming(0.66),
                    label: "Slimming",
                    paper_err: "5.65%",
                    paper_comp: "2.9x",
                },
            ],
        ),
        (
            "WRN-28-10 (nano)",
            wrn,
            wrn_vd,
            vec![
                Row {
                    rule: Rule::Baseline,
                    label: "Baseline",
                    paper_err: "3.75%",
                    paper_comp: "1x",
                },
                Row {
                    rule: Rule::DropBackRatio(4.5),
                    label: "DropBack 4.5x",
                    paper_err: "3.85%",
                    paper_comp: "4.5x",
                },
                Row {
                    rule: Rule::DropBackRatio(5.2),
                    label: "DropBack 5.2x",
                    paper_err: "4.02%",
                    paper_comp: "5.2x",
                },
                Row {
                    rule: Rule::DropBackRatio(7.3),
                    label: "DropBack 7.3x",
                    paper_err: "4.20%",
                    paper_comp: "7.3x",
                },
                Row {
                    rule: Rule::VarDrop,
                    label: "Var. Dropout",
                    paper_err: "90%",
                    paper_comp: "N/A",
                },
                Row {
                    rule: Rule::Magnitude(0.75),
                    label: "Mag Pruning .75",
                    paper_err: "26.52%",
                    paper_comp: "4x",
                },
                Row {
                    rule: Rule::Slimming(0.75),
                    label: "Slimming .75",
                    paper_err: "16.64%",
                    paper_comp: "4x",
                },
            ],
        ),
    ];

    // Optional suite filter: DROPBACK_SUITE=vgg|densenet|wrn runs one family;
    // DROPBACK_ROWS=a-b restricts to a row range within it (chunked runs).
    let suite_filter = std::env::var("DROPBACK_SUITE").unwrap_or_default();
    let row_range: Option<(usize, usize)> = std::env::var("DROPBACK_ROWS").ok().and_then(|s| {
        let (a, b) = s.split_once('-')?;
        Some((a.parse().ok()?, b.parse().ok()?))
    });
    for (suite_name, ctor, vd_ctor, rows) in suites {
        if !suite_filter.is_empty()
            && !suite_name
                .to_lowercase()
                .contains(&suite_filter.to_lowercase())
        {
            continue;
        }
        let rows: Vec<Row> = match row_range {
            None => rows,
            Some((a, b)) => rows
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i >= a && *i <= b)
                .map(|(_, r)| r)
                .collect(),
        };
        println!("--- {suite_name} ---");
        let mut table = Table::new(&[
            "config",
            "paper err",
            "measured err",
            "paper comp",
            "measured comp",
            "best epoch",
        ]);
        for row in rows {
            let report = match row.rule {
                Rule::Baseline => {
                    runners::run_cifar(ctor(seed()), Sgd::new(), &train, &test, epochs)
                }
                Rule::DropBackRatio(ratio) => {
                    // No freezing, matching the paper's Table 3 (Freeze
                    // Epoch = N/A for DenseNet/WRN; VGG's scaled freeze
                    // points degenerate at this epoch budget).
                    let net = ctor(seed());
                    let k = ((net.num_params() as f32 / ratio).round() as usize).max(1);
                    runners::run_cifar(net, DropBack::new(k), &train, &test, epochs)
                }
                Rule::VarDrop => {
                    // Manual loop so we keep the network afterwards and can
                    // report the log-α-based compression.
                    let mut net = vd_ctor(seed());
                    let kl = KlAnneal::new(epochs / 2 + 1, 2e-4);
                    let batcher = Batcher::new(32, 0x5EED);
                    let mut opt = Sgd::new();
                    let mut history = Vec::new();
                    let mut best = (0usize, 0.0f32);
                    for epoch in 0..epochs {
                        for (x, labels) in batcher.epoch(&train, epoch as u64) {
                            let _ = net.loss_backward(&x, &labels);
                            let _ = net.kl_backward(kl.at(epoch));
                            opt.step(net.store_mut(), 0.05);
                        }
                        let acc = net.accuracy(&test, 256);
                        history.push(acc);
                        if acc > best.1 {
                            best = (epoch, acc);
                        }
                    }
                    let comp = runners::vd_compression(&net);
                    let err = 100.0 * (1.0 - best.1);
                    table.row(&[
                        &row.label,
                        &row.paper_err,
                        &format!("{err:.2}%"),
                        &row.paper_comp,
                        &format!("{comp:.2}x"),
                        &best.0,
                    ]);
                    continue;
                }
                Rule::Magnitude(frac) => runners::run_cifar(
                    ctor(seed()),
                    MagnitudePruning::new(frac),
                    &train,
                    &test,
                    epochs,
                ),
                Rule::Slimming(frac) => {
                    let net = ctor(seed());
                    let gammas = gamma_ranges(&net);
                    let slim = NetworkSlimming::new(gammas, 1e-4, frac)
                        .prune_at_epoch((2 * epochs / 3).max(1));
                    runners::run_cifar(net, slim, &train, &test, epochs)
                }
            };
            eprintln!(
                "[{suite_name}] {}: err {:.2}% comp {:.2}x",
                row.label,
                report.best_val_error_percent(),
                report.compression()
            );
            table.row(&[
                &row.label,
                &row.paper_err,
                &format!("{:.2}%", report.best_val_error_percent()),
                &row.paper_comp,
                &format!("{:.2}x", report.compression()),
                &report.best_epoch,
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "shape check: DropBack should track the baseline within ~1-2% at <=7x compression\n\
         on all three families, degrade gracefully at 20-30x, while variational dropout\n\
         struggles on the dense architectures and aggressive magnitude pruning / slimming\n\
         hurt WRN badly — the paper's qualitative ordering."
    );
}
