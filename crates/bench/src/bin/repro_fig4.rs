//! Figure 4 — VGG-S on CIFAR-10: validation accuracy per epoch for
//! DropBack (5x), variational dropout, and the baseline.
//!
//! The paper's shape: DropBack starts slightly slower than the baseline but
//! matches it after ~20 epochs; variational dropout learns fast early and
//! plateaus at lower accuracy.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_fig4
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, sparkline, Table};

fn main() {
    banner(
        "Figure 4",
        "VGG-S convergence: DropBack vs variational dropout vs baseline",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 12);
    let n_train = env_usize("DROPBACK_TRAIN", 1200);
    let n_test = env_usize("DROPBACK_TEST", 400);
    let hw = dropback::nn::models::CIFAR_NANO_HW;
    let (train, test) = synthetic_cifar(n_train, n_test, hw, hw, seed());

    let base = runners::run_cifar(
        models::vgg_s_nano(seed()),
        Sgd::new(),
        &train,
        &test,
        epochs,
    );
    let db = {
        let net = models::vgg_s_nano(seed());
        let k = (net.num_params() / 5).max(1); // the 5x point of Figure 4
        runners::run_cifar(net, DropBack::new(k), &train, &test, epochs)
    };
    let vd = {
        let cfg = TrainConfig::new(epochs, 32)
            .lr(LrSchedule::Constant(0.05))
            .patience(None)
            .kl_anneal(KlAnneal::new(epochs / 2 + 1, 2e-4));
        Trainer::new(cfg).run(models::vgg_s_nano_vd(seed()), Sgd::new(), &train, &test)
    };

    let curves = [
        ("baseline", &base),
        ("dropback 5x", &db),
        ("variational", &vd),
    ];
    println!("validation accuracy per epoch:");
    for (name, r) in &curves {
        let c: Vec<f32> = r.val_curve().iter().map(|&(_, a)| a).collect();
        println!(
            "  {:<12} {}  (best {:.4} @ epoch {})",
            name,
            sparkline(&c),
            r.best_val_acc,
            r.best_epoch
        );
    }
    let mut t = Table::new(&["epoch", "baseline", "dropback", "variational"]);
    for e in 0..epochs {
        let get = |r: &TrainReport| {
            r.history
                .get(e)
                .map(|s| format!("{:.4}", s.val_acc))
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[&e, &get(&base), &get(&db), &get(&vd)]);
    }
    println!("{}", t.render());
    println!(
        "shape check: DropBack's curve should approach the baseline by the end of\n\
         training (the paper: slower for ~20 epochs, then identical convergence) —\n\
         note the nano model is far less over-parameterized than the 15M-param VGG-S,\n\
         so the 5x point costs more accuracy here than in the paper."
    );
    assert!(
        (base.best_val_acc - db.best_val_acc).abs() < 0.2,
        "DropBack failed to track the baseline"
    );
    // DropBack's late-epoch slope should be non-negative (still improving
    // toward the baseline), mirroring the paper's catch-up behaviour.
    let db_curve: Vec<f32> = db.val_curve().iter().map(|&(_, a)| a).collect();
    let early_mean = db_curve[..3].iter().sum::<f32>() / 3.0;
    let late_mean = db_curve[db_curve.len() - 3..].iter().sum::<f32>() / 3.0;
    assert!(late_mean > early_mean, "DropBack never improved");
    println!("PASS");
}
