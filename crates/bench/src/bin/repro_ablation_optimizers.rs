//! §3 methods note — "All networks were optimized using stochastic
//! gradient descent without momentum, as all other optimization strategies
//! cost significant extra memory." This ablation makes the trade explicit:
//! at a fixed *memory* budget (weights + optimizer state), momentum and
//! Adam must shrink the model or budget to fit, while DropBack spends the
//! whole budget on tracked weights.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_ablation_optimizers
//! ```

use dropback::optim::{Adam, SgdMomentum};
use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

fn main() {
    banner(
        "Ablation (§3 methods)",
        "optimizer state vs weight budget (MNIST-100-100)",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 10);
    let n_train = env_usize("DROPBACK_TRAIN", 4000);
    let n_test = env_usize("DROPBACK_TEST", 1000);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let params = 89_610usize;
    let mut table = Table::new(&[
        "rule",
        "training memory (f32 words)",
        "words / weight",
        "error",
    ]);
    let runs: Vec<(&str, TrainReport)> = vec![
        (
            "SGD (paper's choice)",
            runners::run_mnist(
                models::mnist_100_100(seed()),
                Sgd::new(),
                &train,
                &test,
                epochs,
            ),
        ),
        (
            "SGD + momentum 0.9",
            runners::run_mnist(
                models::mnist_100_100(seed()),
                SgdMomentum::new(0.9),
                &train,
                &test,
                epochs,
            ),
        ),
        ("Adam", {
            // Adam needs a much smaller rate.
            let cfg = TrainConfig::new(epochs, 64).lr(LrSchedule::Constant(0.002));
            Trainer::new(cfg).run(models::mnist_100_100(seed()), Adam::new(), &train, &test)
        }),
        (
            "DropBack 20k",
            runners::run_mnist(
                models::mnist_100_100(seed()),
                DropBack::new(20_000),
                &train,
                &test,
                epochs,
            ),
        ),
    ];
    for (name, r) in &runs {
        table.row(&[
            name,
            &r.stored_weights,
            &format!("{:.2}", r.stored_weights as f32 / params as f32),
            &format!("{:.2}%", r.best_val_error_percent()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading: momentum doubles and Adam triples the per-weight training memory for\n\
         (at this scale) no accuracy win — while DropBack cuts it by 4.5x. This is why\n\
         the paper trains everything with momentum-free SGD."
    );
}
