//! Figure 1 — distribution (KDE) of accumulated gradients under standard
//! SGD on the 90k-parameter MNIST-100-100 MLP.
//!
//! The paper's observation: the density has a tall spike near zero — most
//! weights accumulate almost no gradient — which is why tracking only the
//! top-k loses little.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_fig1
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, sparkline};

fn main() {
    banner(
        "Figure 1",
        "KDE of accumulated gradients (MNIST-100-100, SGD)",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 8);
    let n_train = env_usize("DROPBACK_TRAIN", 3000);
    let (train, test) = runners::mnist_data(n_train, 500, seed());

    let mut net = models::mnist_100_100(seed());
    let n = net.num_params();
    let mut churn = TopKChurn::new(n, 2_000);
    let mut opt = Sgd::new();
    let schedule = LrSchedule::paper_mnist(epochs);
    let batcher = Batcher::new(64, 0x5EED);
    for epoch in 0..epochs {
        let lr = schedule.at(epoch);
        for (x, labels) in batcher.epoch(&train, epoch as u64) {
            let _ = net.loss_backward(&x, &labels);
            churn.update(net.store().grads(), lr);
            opt.step(net.store_mut(), lr);
        }
    }
    eprintln!("val acc after training: {:.4}", net.accuracy(&test, 256));

    // Signed accumulated gradient = final - initial weight (α Σ g).
    let w0 = net.store().regen_initial();
    let accum: Vec<f32> = net
        .store()
        .params()
        .iter()
        .zip(&w0)
        .map(|(&w, &w0)| w0 - w) // +αΣg moves w down; sign convention of Fig 1
        .collect();
    let (xs, ys) = gaussian_kde(&accum, 61);
    let peak = ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    println!("accumulated-gradient KDE over {n} weights:");
    println!("  x range: [{:.3}, {:.3}]", xs[0], xs[xs.len() - 1]);
    println!("  {}", sparkline(&ys));
    let near_zero = accum.iter().filter(|a| a.abs() < 0.05).count();
    println!(
        "  mass within |a|<0.05: {:.1}% of weights (paper: the distribution is a\n\
         tall spike at 0 with thin tails)",
        100.0 * near_zero as f32 / n as f32
    );
    let peak_x = xs[ys.iter().position(|&y| y == peak).unwrap_or(0)];
    println!("  density peak at x = {peak_x:.3} (paper: peak at 0)");
    assert!(
        peak_x.abs() < 0.25,
        "KDE peak should sit near zero, got {peak_x}"
    );
    println!("\nshape check: PASS — heavy concentration of accumulated gradients near zero.");
}
