//! Figure 5 — ℓ2 weight-diffusion distance vs training iteration (log time
//! scale) on MNIST-100-100 for: baseline SGD, DropBack 2k, DropBack 10k,
//! magnitude pruning 0.75, and variational dropout.
//!
//! The paper's shape: DropBack's diffusion curve hugs the baseline's
//! (slightly below); magnitude pruning *starts* at a large distance
//! (zeroing destroys the init scaffolding); variational dropout diffuses
//! much faster than everyone.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_fig5
//! ```

use dropback::prelude::*;
use dropback::telemetry::Json;
use dropback_bench::{
    banner, env_usize, finish_trace, runners, seed, telemetry_from_env, trace_from_env, Table,
};

/// Probe recording ℓ2 distance from init on a log-spaced iteration grid.
struct DiffusionProbe {
    tracker: DiffusionTracker,
}

impl StepProbe for DiffusionProbe {
    fn after_step(&mut self, iteration: u64, ps: &ParamStore) {
        if DiffusionTracker::should_sample(iteration + 1, 6) {
            self.tracker.record(iteration + 1, ps.params());
        }
    }
}

fn run(
    name: &str,
    net: Network,
    opt: impl Optimizer,
    kl: Option<KlAnneal>,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
) -> (String, Vec<(u64, f32)>, f32) {
    let mut probe = DiffusionProbe {
        tracker: DiffusionTracker::new(&net.store().regen_initial()),
    };
    let mut cfg = TrainConfig::new(epochs, 64)
        .lr(LrSchedule::Constant(0.1))
        .patience(None);
    if let Some(a) = kl {
        cfg = cfg.kl_anneal(a);
    }
    let report = Trainer::new(cfg).run_probed(net, opt, train, test, &mut probe);
    (
        name.to_string(),
        probe.tracker.samples().to_vec(),
        report.best_val_acc,
    )
}

fn main() {
    banner(
        "Figure 5",
        "diffusion (L2) distance vs training time (MNIST-100-100)",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 6);
    let n_train = env_usize("DROPBACK_TRAIN", 3000);
    let n_test = env_usize("DROPBACK_TEST", 600);
    let trace_path = trace_from_env();
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let results = vec![
        run(
            "baseline",
            models::mnist_100_100(seed()),
            Sgd::new(),
            None,
            &train,
            &test,
            epochs,
        ),
        run(
            "dropback 2k",
            models::mnist_100_100(seed()),
            DropBack::new(2_000),
            None,
            &train,
            &test,
            epochs,
        ),
        run(
            "dropback 10k",
            models::mnist_100_100(seed()),
            DropBack::new(10_000),
            None,
            &train,
            &test,
            epochs,
        ),
        run(
            "mag prune .75",
            models::mnist_100_100(seed()),
            MagnitudePruning::new(0.75),
            None,
            &train,
            &test,
            epochs,
        ),
        run(
            "var dropout",
            models::mnist_100_100_vd(seed()),
            Sgd::new(),
            Some(KlAnneal::new(2, 1e-3)),
            &train,
            &test,
            epochs,
        ),
    ];

    let mut telemetry = telemetry_from_env();
    let mut t = Table::new(&["method", "dist@iter1", "dist@mid", "dist@end", "val acc"]);
    let mut summary = Vec::new();
    for (name, samples, acc) in &results {
        let first = samples.first().map(|&(_, d)| d).unwrap_or(0.0);
        let mid = samples
            .get(samples.len() / 2)
            .map(|&(_, d)| d)
            .unwrap_or(0.0);
        let last = samples.last().map(|&(_, d)| d).unwrap_or(0.0);
        t.row(&[
            name,
            &format!("{first:.2}"),
            &format!("{mid:.2}"),
            &format!("{last:.2}"),
            &format!("{acc:.4}"),
        ]);
        // Structured counterpart of the table row, including the full
        // (iteration, distance) series for downstream plotting.
        let series: Vec<Json> = samples
            .iter()
            .map(|&(it, d)| Json::Arr(vec![it.into(), d.into()]))
            .collect();
        telemetry.emit(
            Event::new("diffusion")
                .with("method", name.as_str())
                .with("dist_first", first)
                .with("dist_mid", mid)
                .with("dist_last", last)
                .with("val_acc", *acc)
                .with("series", series),
        );
        summary.push((name.clone(), first, last));
    }
    println!("{}", t.render());
    println!("full (iteration, distance) series:");
    for (name, samples, _) in &results {
        let pts: Vec<String> = samples
            .iter()
            .map(|(it, d)| format!("({it},{d:.1})"))
            .collect();
        println!("  {:<14} {}", name, pts.join(" "));
    }

    // Shape assertions mirroring the paper's qualitative claims.
    let get = |n: &str| {
        summary
            .iter()
            .find(|(name, _, _)| name == n)
            .unwrap()
            .clone()
    };
    let (_, base_first, base_last) = get("baseline");
    let (_, db10_first, db10_last) = get("dropback 10k");
    let (_, mag_first, _) = get("mag prune .75");
    let (_, _, vd_last) = get("var dropout");
    println!();
    println!(
        "shape check: dropback-10k end distance {:.1} <= baseline {:.1}; magnitude\n\
         pruning initial distance {:.1} >> baseline initial {:.1}; variational dropout\n\
         end distance {:.1} >= baseline {:.1}",
        db10_last, base_last, mag_first, base_first, vd_last, base_last
    );
    assert!(
        db10_first <= base_first * 1.5 + 1.0,
        "dropback should start near baseline"
    );
    assert!(
        db10_last <= base_last * 1.2 + 1.0,
        "dropback should not out-diffuse baseline"
    );
    assert!(
        mag_first > base_first * 3.0,
        "magnitude pruning should start far from init (zeroed scaffolding)"
    );
    telemetry.emit(
        Event::new("figure")
            .with("name", "fig5")
            .with("methods", results.len())
            .with("epochs", epochs)
            .with("shape_check", "pass"),
    );
    telemetry.flush();
    if let Some(path) = &trace_path {
        finish_trace(path);
    }
    println!("PASS");
}
