//! §2.1 ablation — "Recompute initialization-time values for untracked
//! weights": the paper reports that preserving the init scaffolding lets
//! MNIST compress 60×, but zeroing untracked weights caps compression at
//! ~2×. This binary runs DropBack with regenerated vs zeroed untracked
//! weights across budgets.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_ablation_zeroed
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

fn main() {
    banner(
        "Ablation (§2.1)",
        "untracked weights: regenerated init vs zeroed (MNIST-100-100)",
    );
    let epochs = env_usize("DROPBACK_EPOCHS", 12);
    let n_train = env_usize("DROPBACK_TRAIN", 4000);
    let n_test = env_usize("DROPBACK_TEST", 1000);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let mut table = Table::new(&[
        "budget k",
        "compression",
        "err (regenerated)",
        "err (zeroed)",
    ]);
    let mut biggest_gap = 0.0f32;
    for k in [45_000usize, 20_000, 5_000, 1_500] {
        let regen = runners::run_mnist(
            models::mnist_100_100(seed()),
            DropBack::new(k),
            &train,
            &test,
            epochs,
        );
        let zeroed = runners::run_mnist(
            models::mnist_100_100(seed()),
            DropBack::new(k).with_zeroed_untracked(),
            &train,
            &test,
            epochs,
        );
        let gap = zeroed.best_val_error_percent() - regen.best_val_error_percent();
        biggest_gap = biggest_gap.max(gap);
        table.row(&[
            &k,
            &format!("{:.1}x", 89_610.0 / k as f32),
            &format!("{:.2}%", regen.best_val_error_percent()),
            &format!("{:.2}%", zeroed.best_val_error_percent()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: with init values preserved the tracked set shrinks 60x at equal\n\
         accuracy; zeroing the untracked weights only allows ~2x. Expect the zeroed\n\
         column to degrade much faster as k shrinks (max observed gap: {biggest_gap:.1}%)."
    );
    assert!(
        biggest_gap > 2.0,
        "zeroing should hurt accuracy at high compression (gap {biggest_gap})"
    );
    println!("shape check: PASS");
}
