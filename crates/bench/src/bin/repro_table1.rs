//! Table 1 — MNIST compression/accuracy for LeNet-300-100 and
//! MNIST-100-100: baseline vs DropBack at 50k / 20k / 1.5k tracked weights.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_table1
//! ```

use dropback::prelude::*;
use dropback_bench::{
    banner, env_usize, finish_trace, runners, seed, telemetry_from_env, trace_from_env, Table,
};

struct PaperRow {
    label: &'static str,
    err: &'static str,
    comp: &'static str,
}

fn main() {
    banner("Table 1", "MNIST validation error vs weight compression");
    let epochs = env_usize("DROPBACK_EPOCHS", 25);
    let n_train = env_usize("DROPBACK_TRAIN", 5000);
    let n_test = env_usize("DROPBACK_TEST", 1000);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());
    let mut telemetry = telemetry_from_env();
    let trace_path = trace_from_env();

    // (model ctor, paper rows, budgets, freeze epochs)
    let lenet_paper = [
        PaperRow {
            label: "Baseline 267k",
            err: "1.41%",
            comp: "1x",
        },
        PaperRow {
            label: "DropBack 50k",
            err: "1.51%",
            comp: "5.33x",
        },
        PaperRow {
            label: "DropBack 20k",
            err: "1.78%",
            comp: "13.33x",
        },
        PaperRow {
            label: "DropBack 1.5k",
            err: "3.84%",
            comp: "177.74x",
        },
    ];
    let small_paper = [
        PaperRow {
            label: "Baseline 90k",
            err: "1.70%",
            comp: "1x",
        },
        PaperRow {
            label: "DropBack 50k",
            err: "1.58%",
            comp: "1.8x",
        },
        PaperRow {
            label: "DropBack 20k",
            err: "1.70%",
            comp: "4.5x",
        },
        PaperRow {
            label: "DropBack 1.5k",
            err: "3.78%",
            comp: "60x",
        },
    ];
    let budgets: [Option<usize>; 4] = [None, Some(50_000), Some(20_000), Some(1_500)];
    // Paper freeze epochs, rescaled to the reduced epoch budget.
    let lenet_freeze = [None, Some(100), Some(35), Some(40)];
    let small_freeze = [None, Some(5), Some(5), Some(30)];

    for (model_name, ctor, paper, freezes) in [
        (
            "MNIST-300-100 (LeNet)",
            models::lenet_300_100 as fn(u64) -> Network,
            &lenet_paper,
            &lenet_freeze,
        ),
        (
            "MNIST-100-100",
            models::mnist_100_100 as fn(u64) -> Network,
            &small_paper,
            &small_freeze,
        ),
    ] {
        println!("--- {model_name} ---");
        let mut table = Table::new(&[
            "config",
            "paper err",
            "measured err",
            "paper comp",
            "measured comp",
            "best epoch",
            "freeze",
        ]);
        for ((paper_row, budget), freeze) in paper.iter().zip(&budgets).zip(freezes.iter()) {
            let net = ctor(seed());
            let report = match budget {
                None => runners::run_mnist(net, Sgd::new(), &train, &test, epochs),
                Some(k) => {
                    let mut db = DropBack::new(*k);
                    if let Some(fe) = freeze {
                        // Rescale the paper's freeze epoch to our budget,
                        // flooring at 3 epochs: with ~80 iterations/epoch
                        // (vs the paper's ~860) a 1-epoch freeze would fix
                        // the tracked set long before it stabilizes.
                        let fe_scaled = ((*fe as f64) * epochs as f64 / 100.0).ceil() as usize;
                        db = db.freeze_after(fe_scaled.max(3));
                    }
                    runners::run_mnist(net, db, &train, &test, epochs)
                }
            };
            let freeze_str = freeze
                .map(|f| f.to_string())
                .unwrap_or_else(|| "N/A".into());
            table.row(&[
                &paper_row.label,
                &paper_row.err,
                &format!("{:.2}%", report.best_val_error_percent()),
                &paper_row.comp,
                &format!("{:.2}x", report.compression()),
                &report.best_epoch,
                &freeze_str,
            ]);
            // Structured counterpart of the table row.
            telemetry.emit(
                Event::new("table1_row")
                    .with("model", model_name)
                    .with("config", paper_row.label)
                    .with("paper_err", paper_row.err)
                    .with("measured_err_percent", report.best_val_error_percent())
                    .with("paper_comp", paper_row.comp)
                    .with("measured_comp", report.compression())
                    .with("best_epoch", report.best_epoch)
                    .with("stored_weights", report.stored_weights),
            );
        }
        println!("{}", table.render());
    }
    telemetry.emit(
        Event::new("table")
            .with("name", "table1")
            .with("epochs", epochs)
            .with("train", n_train)
            .with("test", n_test),
    );
    telemetry.flush();
    if let Some(path) = &trace_path {
        finish_trace(path);
    }
    println!(
        "shape check: DropBack at moderate budgets (>=20k) should sit within ~1-2% of the\n\
         baseline error while storing 4-13x fewer weights; the 1.5k extreme point should\n\
         show a clear (roughly 2x) error increase, mirroring the paper's trend."
    );
}
