//! `BENCH_serve.json` — the serving-path load baseline.
//!
//! Boots a real in-process [`dropback_serve::Server`] on a loopback port
//! from a deterministic snapshot, then drives it closed-loop over actual
//! HTTP at several concurrency levels: each client thread holds one
//! keep-alive connection and fires its next `/infer` the moment the
//! previous reply lands. Latency quantiles are computed client-side from
//! the exact sorted per-request samples (not the server's log2-bucketed
//! histograms), so p50/p99 here are sharp; the server's own digest rides
//! along for batch-fill and regen counts.
//!
//! What to look for: batch fill should rise with concurrency (that is
//! micro-batching working — more rows share one regen sweep of the
//! untracked weights), so throughput should scale better than 1/latency.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin bench_serve
//! ```
//!
//! Scale knobs: `DROPBACK_BENCH_CLIENTS` (max level, default 16),
//! `DROPBACK_BENCH_REQS` (requests per client, default 100). Timing goes
//! through `dropback_telemetry::Stopwatch`, the workspace's sanctioned
//! clock. How to read the output: docs/SERVING.md.

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, seed};
use dropback_serve::client::infer_body;
use dropback_serve::{rt, Backoff, BatchConfig, HttpClient, Server, ServerConfig};
use dropback_telemetry::{Json, Stopwatch, TelemetrySnapshot};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

/// Writes one deterministic snapshot (a perturbed `mnist-100-100` with a
/// realistic tracked-entry count) and returns the directory.
fn prep_snapshot_dir(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dropback-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut net = models::mnist_100_100(seed);
    let mut opt = SparseDropBack::new(20_000);
    opt.step(net.store_mut(), 0.0);
    for i in 0..20_000 {
        net.store_mut().params_mut()[(i * 4) % 89_610] = (i % 631) as f32 * 1e-3 - 0.3;
    }
    let progress = TrainProgress {
        next_epoch: 1,
        ..TrainProgress::fresh()
    };
    let state = TrainState::capture(&net, &opt, seed, &progress);
    let mut store = CheckpointStore::open(&dir).unwrap().keep(3);
    let mut tel = Telemetry::disabled();
    store.save(&state, &mut tel).unwrap();
    dir
}

/// The fixed probe input every client sends (dim 784, values in [-0.4, 0.6)).
fn probe_input() -> Vec<f32> {
    (0..784)
        .map(|i| ((i * 37) % 113) as f32 / 113.0 - 0.4)
        .collect()
}

/// One measured level: client-side latencies plus the server's digest.
struct LevelResult {
    clients: usize,
    requests: usize,
    wall_ns: u64,
    latencies_ns: Vec<u64>,
    digest: TelemetrySnapshot,
}

impl LevelResult {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ns as f64 / 1e9).max(1e-9)
    }

    /// Exact quantile from the sorted sample set (nearest-rank).
    fn quantile_us(&self, q: f64) -> f64 {
        let idx = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[idx] as f64 / 1_000.0
    }

    fn digest_counter(&self, name: &str) -> u64 {
        self.digest
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    fn batch_fill_mean(&self) -> f64 {
        self.digest
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.batch_fill")
            .map_or(0.0, |(_, h)| h.mean)
    }
}

/// Runs `clients` closed-loop connections of `reqs` requests each against
/// a fresh server over `dir`, so each level gets its own digest.
fn run_level(dir: &PathBuf, clients: usize, reqs: usize) -> LevelResult {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig::default(),
        poll: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let store = CheckpointStore::open(dir).unwrap();
    let server = Server::start(cfg, store).unwrap();
    let addr = server.addr();

    // Warm the connection path and the first regen sweep untimed.
    let input = probe_input();
    let mut warm = HttpClient::connect(addr).unwrap();
    warm.infer(&input).unwrap();

    let (tx, rx) = mpsc::channel::<Vec<u64>>();
    let sw = Stopwatch::started();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let tx = tx.clone();
            rt::spawn(&format!("load-{c}"), move || {
                let input = probe_input();
                let mut client = HttpClient::connect(addr).unwrap();
                let mut lat = Vec::with_capacity(reqs);
                for _ in 0..reqs {
                    let one = Stopwatch::started();
                    client.infer(&input).unwrap();
                    lat.push(one.elapsed_ns().unwrap_or(0));
                }
                let _ = tx.send(lat);
            })
            .unwrap()
        })
        .collect();
    drop(tx);
    let mut latencies_ns: Vec<u64> = rx.iter().flatten().collect();
    let wall_ns = sw.elapsed_ns().unwrap_or(0);
    for w in workers {
        let _ = w.join();
    }
    latencies_ns.sort_unstable();
    let digest = server.stop();
    LevelResult {
        clients,
        requests: clients * reqs,
        wall_ns,
        latencies_ns,
        digest,
    }
}

/// What 2× overload looks like: shed rate and tail latency of the
/// requests that *do* get in.
struct OverloadResult {
    clients: usize,
    queue_cap: usize,
    successes: usize,
    shed: u64,
    attempts: u64,
    wall_ns: u64,
    latencies_ns: Vec<u64>,
}

impl OverloadResult {
    fn shed_rate(&self) -> f64 {
        self.shed as f64 / (self.attempts as f64).max(1.0)
    }

    fn throughput_rps(&self) -> f64 {
        self.successes as f64 / (self.wall_ns as f64 / 1e9).max(1e-9)
    }

    fn quantile_us(&self, q: f64) -> f64 {
        let idx = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[idx] as f64 / 1_000.0
    }
}

/// Drives the server at ~2× its queue capacity: twice `queue_cap` clients
/// hammer a deliberately small queue, retrying every 503 after a seeded
/// jittered backoff ([`dropback_serve::Backoff`]) until each lands `reqs`
/// successes. Measures how much load the server refuses (shed rate) and
/// what the tail looks like for the requests it accepts.
fn run_overload(dir: &PathBuf, queue_cap: usize, reqs: usize) -> OverloadResult {
    let clients = queue_cap * 2;
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            queue_cap,
            ..BatchConfig::default()
        },
        poll: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let store = CheckpointStore::open(dir).unwrap();
    let server = Server::start(cfg, store).unwrap();
    let addr = server.addr();

    let input = probe_input();
    let mut warm = HttpClient::connect(addr).unwrap();
    warm.infer(&input).unwrap();

    // Each worker reports (success latencies, sheds, attempts).
    let (tx, rx) = mpsc::channel::<(Vec<u64>, u64, u64)>();
    let sw = Stopwatch::started();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let tx = tx.clone();
            rt::spawn(&format!("overload-{c}"), move || {
                let body = infer_body(&probe_input());
                let mut client = HttpClient::connect(addr).unwrap();
                let mut backoff = Backoff::new(
                    seed() ^ (c as u64).wrapping_mul(0x9E37_79B9),
                    Duration::from_micros(200),
                    Duration::from_millis(10),
                );
                let (mut lat, mut shed, mut attempts) = (Vec::with_capacity(reqs), 0u64, 0u64);
                while lat.len() < reqs {
                    attempts += 1;
                    let one = Stopwatch::started();
                    let resp = client.post("/infer", &body).unwrap();
                    match resp.status {
                        200 => {
                            lat.push(one.elapsed_ns().unwrap_or(0));
                            backoff.reset();
                        }
                        503 => {
                            shed += 1;
                            std::thread::sleep(backoff.next_delay());
                        }
                        other => panic!("unexpected status {other} under overload"),
                    }
                }
                let _ = tx.send((lat, shed, attempts));
            })
            .unwrap()
        })
        .collect();
    drop(tx);
    let (mut latencies_ns, mut shed, mut attempts) = (Vec::new(), 0u64, 0u64);
    for (lat, s, a) in rx.iter() {
        latencies_ns.extend(lat);
        shed += s;
        attempts += a;
    }
    let wall_ns = sw.elapsed_ns().unwrap_or(0);
    for w in workers {
        let _ = w.join();
    }
    latencies_ns.sort_unstable();
    let _ = server.stop();
    OverloadResult {
        clients,
        queue_cap,
        successes: clients * reqs,
        shed,
        attempts,
        wall_ns,
        latencies_ns,
    }
}

/// Reruns one mid-size level with request tracing on, exports the async
/// timeline to `trace_path` (Perfetto-loadable), and returns the
/// per-stage digest from `dropback::trace_analysis` — queue vs infer vs
/// write percentiles plus batch-fill stats — for the bench artifact.
fn run_traced_level(dir: &PathBuf, clients: usize, reqs: usize, trace_path: &str) -> Json {
    use dropback::telemetry::trace;
    trace::start_tracing();
    let level = run_level(dir, clients, reqs);
    // Connection handlers publish their lane-end events right after the
    // reply write; give the last stragglers a beat before draining the
    // buffer so the strict analyzer never sees a half-open lane.
    std::thread::sleep(Duration::from_millis(200));
    trace::stop_tracing();
    let mut records = trace::take_trace();
    // A handler descheduled between its reply write and its lane-end
    // events lands those ends in the buffer slightly late (they are
    // pushed even after stop_tracing, by design). If the strict analyzer
    // still sees an open lane, wait and merge the stragglers in.
    let (text, analysis) = loop {
        let mut buf = Vec::new();
        trace::write_chrome_trace(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        match dropback::trace_analysis::analyze_chrome_trace(&text) {
            Ok(a) => break (text, a),
            Err(e) if records.len() < 1_000_000 => {
                std::thread::sleep(Duration::from_millis(200));
                let late = trace::take_trace();
                if late.is_empty() {
                    panic!("traced level produced an invalid trace: {e}");
                }
                records.extend(late);
                records.sort_by_key(|r| r.ts_ns);
            }
            Err(e) => panic!("traced level produced an invalid trace: {e}"),
        }
    };
    if let Err(e) = std::fs::write(trace_path, &text) {
        eprintln!("cannot write {trace_path}: {e}");
    }
    let aj = analysis.to_json();
    let section = |k: &str| aj.get(k).cloned().unwrap_or(Json::Null);
    Json::Obj(vec![
        ("clients".into(), Json::from(level.clients)),
        ("requests".into(), Json::from(level.requests)),
        ("events".into(), Json::from(records.len())),
        ("trace_file".into(), Json::from(trace_path)),
        ("async".into(), section("async")),
        ("batches".into(), section("batches")),
    ])
}

fn main() {
    banner(
        "BENCH serve",
        "closed-loop /infer load vs concurrency on one snapshot",
    );
    let max_clients = env_usize("DROPBACK_BENCH_CLIENTS", 16).max(2);
    let reqs = env_usize("DROPBACK_BENCH_REQS", 100).max(1);
    let dir = prep_snapshot_dir(seed());

    // 1, 4, 16, ... up to the configured ceiling — always >= 2 levels.
    let mut levels = vec![1usize];
    while *levels.last().unwrap() * 4 <= max_clients {
        levels.push(levels.last().unwrap() * 4);
    }
    if levels.len() < 2 {
        levels.push(max_clients);
    }

    println!("closed-loop clients x {reqs} reqs each (client-side exact quantiles):");
    println!("  clients  reqs    rps        p50_ms     p99_ms     batch_fill");
    let mut rows = Vec::new();
    for &clients in &levels {
        let level = run_level(&dir, clients, reqs);
        println!(
            "  {:<8} {:<7} {:<10.1} {:<10.3} {:<10.3} {:.2}",
            level.clients,
            level.requests,
            level.throughput_rps(),
            level.quantile_us(0.50) / 1_000.0,
            level.quantile_us(0.99) / 1_000.0,
            level.batch_fill_mean(),
        );
        rows.push(level);
    }

    // The overload level: twice as many clients as queue slots, retrying
    // 503s with seeded backoff. The interesting numbers are the shed rate
    // (how much the server refuses) and the p99 of what it accepts (the
    // queue bound keeping the tail flat instead of unbounded).
    let queue_cap = (max_clients / 2).max(2);
    let overload = run_overload(&dir, queue_cap, reqs);
    println!(
        "\noverload 2x: {} clients vs queue_cap {} -> shed rate {:.1}% over {} attempts,\n\
         \x20 accepted p50 {:.3}ms p99 {:.3}ms at {:.1} rps",
        overload.clients,
        overload.queue_cap,
        overload.shed_rate() * 100.0,
        overload.attempts,
        overload.quantile_us(0.50) / 1_000.0,
        overload.quantile_us(0.99) / 1_000.0,
        overload.throughput_rps(),
    );

    // One traced rerun at a mid level: the exported timeline goes next
    // to the artifact, and its per-stage digest (queue vs infer vs write)
    // rides in the JSON under "trace".
    let traced_clients = levels[levels.len() / 2];
    let trace_digest = run_traced_level(&dir, traced_clients, reqs, "BENCH_serve.trace.json");
    println!(
        "\ntraced rerun at {traced_clients} clients: {} events -> BENCH_serve.trace.json",
        trace_digest
            .get("events")
            .and_then(Json::as_u64)
            .unwrap_or(0)
    );

    let base = rows[0].throughput_rps();
    let peak = rows
        .iter()
        .map(LevelResult::throughput_rps)
        .fold(base, f64::max);
    println!(
        "\npeak throughput {:.1} rps ({:.2}x the 1-client baseline);",
        peak,
        peak / base.max(1e-9)
    );
    println!("batch fill rising with clients = micro-batching amortizing the");
    println!("regen sweep across rows (see docs/SERVING.md)");

    let level_json = |l: &LevelResult| {
        Json::Obj(vec![
            ("clients".into(), Json::from(l.clients)),
            ("requests".into(), Json::from(l.requests)),
            ("throughput_rps".into(), Json::from(l.throughput_rps())),
            ("p50_us".into(), Json::from(l.quantile_us(0.50))),
            ("p90_us".into(), Json::from(l.quantile_us(0.90))),
            ("p99_us".into(), Json::from(l.quantile_us(0.99))),
            ("batch_fill_mean".into(), Json::from(l.batch_fill_mean())),
            (
                "batches".into(),
                Json::from(l.digest_counter("serve.batches")),
            ),
            (
                "regens".into(),
                Json::from(l.digest_counter("serve.regens")),
            ),
            (
                "stored_reads".into(),
                Json::from(l.digest_counter("serve.stored_reads")),
            ),
        ])
    };
    let json = Json::Obj(vec![
        (
            "host_parallelism".into(),
            Json::from(std::thread::available_parallelism().map_or(1, |n| n.get())),
        ),
        ("model".into(), Json::from("mnist-100-100")),
        ("reqs_per_client".into(), Json::from(reqs)),
        ("seed".into(), Json::from(seed())),
        (
            "levels".into(),
            Json::Arr(rows.iter().map(level_json).collect()),
        ),
        (
            "overload".into(),
            Json::Obj(vec![
                ("clients".into(), Json::from(overload.clients)),
                ("queue_cap".into(), Json::from(overload.queue_cap)),
                ("successes".into(), Json::from(overload.successes)),
                ("shed".into(), Json::from(overload.shed)),
                ("attempts".into(), Json::from(overload.attempts)),
                ("shed_rate".into(), Json::from(overload.shed_rate())),
                (
                    "throughput_rps".into(),
                    Json::from(overload.throughput_rps()),
                ),
                ("p50_us".into(), Json::from(overload.quantile_us(0.50))),
                ("p99_us".into(), Json::from(overload.quantile_us(0.99))),
            ]),
        ),
        ("trace".into(), trace_digest),
    ]);
    let path = "BENCH_serve.json";
    match std::fs::write(path, json.render() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
