//! Table 2 — per-layer retained-gradient counts for the trained
//! MNIST-100-100 network: baseline vs DropBack 10k vs DropBack 1.5k.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_table2
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

/// Trains MNIST-100-100 under DropBack with budget `k` and returns the
/// tracked count per weight range (biases folded into their layer).
fn layer_counts(k: usize, train: &Dataset, test: &Dataset, epochs: usize) -> Vec<(String, usize)> {
    let net = models::mnist_100_100(seed());
    let cfg = TrainConfig::new(epochs, 64).lr(LrSchedule::paper_mnist(epochs));
    // Drive the trainer manually so we keep the optimizer afterwards.
    let mut opt = DropBack::new(k);
    let mut net = net;
    let batcher = Batcher::new(64, 0x5EED);
    for epoch in 0..epochs {
        let lr = cfg.schedule.at(epoch);
        for (x, labels) in batcher.epoch(train, epoch as u64) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), lr);
        }
        opt.end_epoch(epoch, net.store_mut());
    }
    let acc = net.accuracy(test, 256);
    eprintln!("DropBack {k}: final val acc {acc:.4}");
    // Aggregate weight+bias ranges per fc layer.
    let mut out: Vec<(String, usize)> = Vec::new();
    for (name, tracked, _total) in opt.tracked_per_range(net.store()) {
        let layer = name.split('.').next().unwrap_or(&name).to_string();
        match out.iter_mut().find(|(l, _)| *l == layer) {
            Some((_, t)) => *t += tracked,
            None => out.push((layer, tracked)),
        }
    }
    out
}

fn main() {
    banner("Table 2", "per-layer retained weights (MNIST-100-100)");
    let epochs = env_usize("DROPBACK_EPOCHS", 8);
    let n_train = env_usize("DROPBACK_TRAIN", 3000);
    let n_test = env_usize("DROPBACK_TEST", 800);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let baseline = [("fc1", 78_500usize), ("fc2", 10_100), ("fc3", 1_010)];
    let paper_10k = [("fc1", 7_223usize), ("fc2", 2_128), ("fc3", 549)];
    let paper_1500 = [("fc1", 734usize), ("fc2", 512), ("fc3", 254)];

    let got_10k = layer_counts(10_000, &train, &test, epochs);
    let got_1500 = layer_counts(1_500, &train, &test, epochs);

    let mut table = Table::new(&[
        "layer",
        "baseline",
        "paper 10k",
        "measured 10k",
        "paper 1.5k",
        "measured 1.5k",
    ]);
    for i in 0..3 {
        let layer = baseline[i].0;
        let m10 = got_10k
            .iter()
            .find(|(l, _)| l == layer)
            .map(|(_, t)| *t)
            .unwrap_or(0);
        let m15 = got_1500
            .iter()
            .find(|(l, _)| l == layer)
            .map(|(_, t)| *t)
            .unwrap_or(0);
        table.row(&[
            &layer,
            &baseline[i].1,
            &paper_10k[i].1,
            &m10,
            &paper_1500[i].1,
            &m15,
        ]);
    }
    let total_10k: usize = got_10k.iter().map(|(_, t)| t).sum();
    let total_1500: usize = got_1500.iter().map(|(_, t)| t).sum();
    table.row(&[&"Total", &89_610, &10_000, &total_10k, &1_500, &total_1500]);
    println!("{}", table.render());
    println!(
        "shape check: the tracked budget concentrates in fc1 in absolute terms, but the\n\
         smaller budget shifts proportionally more weights to the later layers (fc2/fc3\n\
         keep a larger share at 1.5k than at 10k), as the paper observes."
    );
}
