//! §5 extension — "Quantization is orthogonal to DropBack, and the two
//! techniques can be combined": train DropBack with post-step weight
//! quantization at several bit widths and report the combined
//! compression (weight count × bit width).
//!
//! ```text
//! cargo run --release -p dropback-bench --bin repro_ablation_quant
//! ```

use dropback::prelude::*;
use dropback_bench::{banner, env_usize, runners, seed, Table};

fn main() {
    banner("Extension (§5)", "DropBack x quantization (MNIST-100-100)");
    let epochs = env_usize("DROPBACK_EPOCHS", 10);
    let n_train = env_usize("DROPBACK_TRAIN", 4000);
    let n_test = env_usize("DROPBACK_TEST", 1000);
    let (train, test) = runners::mnist_data(n_train, n_test, seed());

    let k = 20_000usize;
    let params = 89_610usize;
    let mut table = Table::new(&[
        "config",
        "bits",
        "error",
        "total compression (count x width)",
    ]);

    let full = runners::run_mnist(
        models::mnist_100_100(seed()),
        DropBack::new(k),
        &train,
        &test,
        epochs,
    );
    table.row(&[
        &"DropBack 20k fp32",
        &32,
        &format!("{:.2}%", full.best_val_error_percent()),
        &format!("{:.1}x", params as f32 / k as f32),
    ]);
    for bits in [16u32, 8, 4] {
        let report = runners::run_mnist(
            models::mnist_100_100(seed()),
            Quantized::new(DropBack::new(k), bits),
            &train,
            &test,
            epochs,
        );
        table.row(&[
            &format!("DropBack 20k q{bits}"),
            &bits,
            &format!("{:.2}%", report.best_val_error_percent()),
            &format!("{:.1}x", (params as f32 / k as f32) * (32.0 / bits as f32)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expectation: 16- and 8-bit weights track the fp32 error closely, multiplying\n\
         DropBack's count compression by the bit-width ratio; 4-bit starts to cost\n\
         accuracy — quantization composes with, and is orthogonal to, the weight-budget\n\
         mechanism."
    );
}
