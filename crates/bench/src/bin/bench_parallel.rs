//! `BENCH_parallel.json` — the worker-pool parallelism baseline.
//!
//! Three measurements, all on the same machine and build:
//!
//! 1. **Dispatch cost** — the same fixed two-way partitioned workload
//!    submitted through the persistent pool (`pool::run_tasks`) versus
//!    the pre-pool model of spawning scoped threads per call. The pool's
//!    whole reason to exist is that worker threads are created once, so
//!    per-call cost is an enqueue + wakeup rather than an OS spawn.
//! 2. **Serial reference** — the identical workload at one thread, where
//!    `run_tasks` takes the inline path (no queue, no locks), pinning
//!    the "1-thread pool == serial" zero-overhead claim.
//! 3. **Training steps** — mean per-step time for the MLP and conv
//!    models at 1 thread (serial) and 2 threads (pooled). On a
//!    single-core host these bracket the pool's coordination overhead;
//!    on a multi-core host the pooled column shows the speedup.
//! 4. **GEMM throughput** — GFLOP/s of the packed-microkernel GEMM on
//!    training-shaped problems, with the AVX2 kernel on and off
//!    (`simd::set_simd`). Both columns compute bit-identical results
//!    (the conformance suite pins that); the ratio is the price of the
//!    scalar fallback.
//!
//! ```text
//! cargo run --release -p dropback-bench --bin bench_parallel
//! ```
//!
//! Timing goes through `dropback_telemetry::Stopwatch`, the workspace's
//! only sanctioned clock (see docs/LINTS.md, `wall-clock`). How to read
//! the output: docs/PERFORMANCE.md.

use dropback::prelude::*;
use dropback_bench::{banner, env_usize};
use dropback_telemetry::Stopwatch;
use dropback_tensor::{matmul, pool, simd, Tensor};
use std::hint::black_box;
use std::io::Write;

/// Deterministic arithmetic-only task body; `iters` sets the grain.
fn burn(part: usize, iters: usize) -> f32 {
    let mut acc = part as f32 * 0.001 + 1.0;
    for i in 0..iters {
        acc = acc.mul_add(1.000_000_1, (i & 7) as f32 * 1e-7);
    }
    acc
}

/// Runs `parts` disjoint-write tasks through the persistent pool.
fn run_via_pool(out: &mut [f32], iters: usize) {
    let tasks: Vec<pool::Task<'_>> = out
        .chunks_mut(1)
        .enumerate()
        .map(|(i, slot)| Box::new(move || slot[0] = black_box(burn(i, iters))) as pool::Task<'_>)
        .collect();
    pool::run_tasks(tasks);
}

/// The pre-pool dispatch model: a scoped OS thread per task, per call.
fn run_via_spawn(out: &mut [f32], iters: usize) {
    std::thread::scope(|s| {
        for (i, slot) in out.chunks_mut(1).enumerate() {
            s.spawn(move || slot[0] = black_box(burn(i, iters)));
        }
    });
}

/// Mean microseconds per repetition of one dispatch strategy.
fn time_dispatch(parts: usize, iters: usize, reps: usize, f: impl Fn(&mut [f32], usize)) -> f64 {
    let mut out = vec![0.0f32; parts];
    // Warm up allocators, the pool queue, and the branch predictor.
    for _ in 0..reps / 10 + 1 {
        f(&mut out, iters);
    }
    let sw = Stopwatch::started();
    for _ in 0..reps {
        f(&mut out, iters);
    }
    let ns = sw.elapsed_ns().unwrap_or(0);
    black_box(&out);
    ns as f64 / reps as f64 / 1_000.0
}

/// Mean milliseconds per training step at the current pool size.
fn time_steps(mut net: Network, mut opt: impl Optimizer, train: &Dataset, steps: usize) -> f64 {
    let batcher = Batcher::new(64.min(train.len()), 99);
    let mut done = 0usize;
    let mut sw = Stopwatch::started_if(false);
    'outer: for epoch in 0..u64::MAX {
        for (x, labels) in batcher.epoch(train, epoch) {
            if done == steps {
                // Untimed warmup steps are over; start the clock.
                sw = Stopwatch::started();
            }
            let (loss, _acc) = net.loss_backward(&x, &labels);
            black_box(loss);
            opt.step(net.store_mut(), 0.1);
            net.store_mut().zero_grads();
            done += 1;
            if done == 2 * steps {
                break 'outer;
            }
        }
        opt.end_epoch(epoch as usize, net.store_mut());
    }
    sw.elapsed_ns().unwrap_or(0) as f64 / steps as f64 / 1_000_000.0
}

/// Mean GFLOP/s of the packed GEMM on one m×k×n problem shape at the
/// current kernel selection and pool size.
fn time_gemm(m: usize, k: usize, n: usize, reps: usize) -> f64 {
    let a = Tensor::from_vec(
        vec![m, k],
        (0..m * k).map(|i| (i % 97) as f32 * 0.013).collect(),
    );
    let b = Tensor::from_vec(
        vec![k, n],
        (0..k * n).map(|i| (i % 89) as f32 * 0.017).collect(),
    );
    for _ in 0..reps / 10 + 1 {
        black_box(matmul(&a, &b));
    }
    let sw = Stopwatch::started();
    for _ in 0..reps {
        black_box(matmul(&a, &b));
    }
    let ns = sw.elapsed_ns().unwrap_or(0).max(1);
    // flops / ns == 1e9 flops / s == GFLOP/s.
    (2 * m * k * n * reps) as f64 / ns as f64
}

fn main() {
    banner(
        "BENCH parallel",
        "persistent worker pool vs spawn-per-call and serial",
    );
    let reps = env_usize("DROPBACK_BENCH_REPS", 300);
    let steps = env_usize("DROPBACK_BENCH_STEPS", 10);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Dispatch: 2 tasks per call mirrors the pool's own worker count.
    let parts = 2usize;
    let small_iters = 2_000; // dispatch-dominated grain
    let large_iters = 200_000; // compute-dominated grain

    pool::set_threads(1);
    let small_serial = time_dispatch(parts, small_iters, reps, run_via_pool);
    let large_serial = time_dispatch(parts, large_iters, reps / 4 + 1, run_via_pool);

    pool::set_threads(2);
    let small_pool = time_dispatch(parts, small_iters, reps, run_via_pool);
    let large_pool = time_dispatch(parts, large_iters, reps / 4 + 1, run_via_pool);
    let small_spawn = time_dispatch(parts, small_iters, reps, run_via_spawn);
    let large_spawn = time_dispatch(parts, large_iters, reps / 4 + 1, run_via_spawn);

    println!("dispatch (2 tasks/call, mean us/call over {reps} calls):");
    println!("  grain    serial@1   pool@2     spawn@2    pool-vs-spawn");
    println!(
        "  small    {small_serial:<10.2} {small_pool:<10.2} {small_spawn:<10.2} {:.2}x",
        small_spawn / small_pool.max(1e-9)
    );
    println!(
        "  large    {large_serial:<10.2} {large_pool:<10.2} {large_spawn:<10.2} {:.2}x",
        large_spawn / large_pool.max(1e-9)
    );

    // Training steps: the real hot path end to end.
    let (mnist, _) = synthetic_mnist(512, 64, 7);
    let (cifar, _) = synthetic_cifar(96, 16, models::CIFAR_NANO_HW, models::CIFAR_NANO_HW, 11);
    let mlp = |steps| {
        time_steps(
            models::mnist_100_100(7),
            DropBack::new(9_000),
            &mnist,
            steps,
        )
    };
    let conv = |steps| {
        time_steps(
            models::vgg_s_nano(11),
            SparseDropBack::new(4_000),
            &cifar,
            steps,
        )
    };
    pool::set_threads(1);
    let mlp_serial = mlp(steps);
    let conv_serial = conv(steps.div_ceil(2));
    pool::set_threads(2);
    let mlp_pooled = mlp(steps);
    let conv_pooled = conv(steps.div_ceil(2));
    pool::set_threads(1);

    println!("\ntraining steps (mean ms/step over {steps} timed steps):");
    println!("  model             serial@1   pooled@2");
    println!("  mnist-100-100     {mlp_serial:<10.2} {mlp_pooled:<10.2}");
    println!("  vgg-s-nano        {conv_serial:<10.2} {conv_pooled:<10.2}");
    println!("\nhost parallelism: {host} (pooled wins need >1 core; on 1 core the");
    println!("pooled column measures coordination overhead, the dispatch table");
    println!("measures the pool's gain over the old spawn-per-call model)");

    // GEMM throughput: the packed microkernel with the SIMD kernel on and
    // off. Shapes mirror the traced training workload (mnist layer GEMMs)
    // plus one square blocked case that spans every MC/KC/NC boundary.
    let gemm_shapes: [(usize, usize, usize); 3] = [(64, 784, 100), (64, 100, 100), (256, 256, 256)];
    let gemm_reps = reps / 6 + 1;
    let was_simd = simd::simd_active();
    let mut gemm_rows = Vec::new();
    for &(m, k, n) in &gemm_shapes {
        let avx2 = simd::set_simd(true); // false = no AVX2 host, stays scalar
        let simd_gflops = time_gemm(m, k, n, gemm_reps);
        simd::set_simd(false);
        let scalar_gflops = time_gemm(m, k, n, gemm_reps);
        gemm_rows.push((m, k, n, avx2, simd_gflops, scalar_gflops));
    }
    simd::set_simd(was_simd);

    println!("\npacked GEMM throughput (GFLOP/s, mean over {gemm_reps} calls):");
    println!("  m     k     n     simd       scalar     simd-vs-scalar");
    for &(m, k, n, avx2, s, sc) in &gemm_rows {
        let tag = if avx2 {
            ""
        } else {
            "  (no AVX2: simd column is scalar)"
        };
        println!(
            "  {m:<5} {k:<5} {n:<5} {s:<10.2} {sc:<10.2} {:.2}x{tag}",
            s / sc.max(1e-9)
        );
    }

    let gemm_json = gemm_rows
        .iter()
        .map(|&(m, k, n, _, s, sc)| {
            format!(
                "{{\"m\":{m},\"k\":{k},\"n\":{n},\"simd_gflops\":{s:.3},\
                 \"scalar_gflops\":{sc:.3},\"simd_speedup\":{:.3}}}",
                s / sc.max(1e-9)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        concat!(
            "{{\"host_parallelism\":{},",
            "\"dispatch\":{{\"tasks_per_call\":{},\"calls\":{},",
            "\"small_grain\":{{\"iters\":{},\"serial_us\":{:.3},\"pool_us\":{:.3},",
            "\"spawn_us\":{:.3},\"pool_speedup_vs_spawn\":{:.3}}},",
            "\"large_grain\":{{\"iters\":{},\"serial_us\":{:.3},\"pool_us\":{:.3},",
            "\"spawn_us\":{:.3},\"pool_speedup_vs_spawn\":{:.3}}}}},",
            "\"steps\":{{\"timed_steps\":{},",
            "\"mnist_100_100\":{{\"serial_ms\":{:.3},\"pooled_ms\":{:.3}}},",
            "\"vgg_s_nano\":{{\"serial_ms\":{:.3},\"pooled_ms\":{:.3}}}}},",
            "\"gemm\":{{\"calls\":{},\"avx2\":{},\"shapes\":[{}]}}}}\n",
        ),
        host,
        parts,
        reps,
        small_iters,
        small_serial,
        small_pool,
        small_spawn,
        small_spawn / small_pool.max(1e-9),
        large_iters,
        large_serial,
        large_pool,
        large_spawn,
        large_spawn / large_pool.max(1e-9),
        steps,
        mlp_serial,
        mlp_pooled,
        conv_serial,
        conv_pooled,
        gemm_reps,
        gemm_rows.iter().all(|r| r.3),
        gemm_json,
    );
    let path = "BENCH_parallel.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
