//! Shared harness utilities for the `repro_*` experiment binaries.
//!
//! Each binary regenerates one table or figure from the paper (see
//! DESIGN.md's per-experiment index) and prints the paper's reported
//! numbers next to the measured ones. Scale knobs come from the
//! environment so `cargo run --release -p dropback-bench --bin repro_table1`
//! works with no arguments:
//!
//! | env var | meaning | default |
//! |---|---|---|
//! | `DROPBACK_EPOCHS` | epoch budget per run | per-experiment |
//! | `DROPBACK_TRAIN` | training examples | per-experiment |
//! | `DROPBACK_TEST` | test examples | per-experiment |
//! | `DROPBACK_SEED` | master seed | 42 |
//! | `DROPBACK_TELEMETRY` | JSONL event capture path | off |
//! | `DROPBACK_TELEMETRY_STDERR` | mirror events to stderr | off |
//! | `DROPBACK_TRACE` | Chrome trace-event timeline path | off |

use dropback::telemetry::{trace, JsonlSink, StderrSink, TeeSink, Telemetry};
use std::fmt::Display;

/// Reads a `usize` scale knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads the master seed (`DROPBACK_SEED`, default 42).
pub fn seed() -> u64 {
    std::env::var("DROPBACK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Builds the experiment telemetry bundle from the environment:
/// `DROPBACK_TELEMETRY=path.jsonl` captures every structured event as
/// JSONL; `DROPBACK_TELEMETRY_STDERR=1` mirrors them human-readably to
/// stderr. With neither set the bundle is disabled and emitting is free,
/// so the `repro_*` binaries route their results through it
/// unconditionally (see `docs/OBSERVABILITY.md`).
pub fn telemetry_from_env() -> Telemetry {
    let mut tee = TeeSink::default();
    if let Ok(path) = std::env::var("DROPBACK_TELEMETRY") {
        if !path.is_empty() {
            match JsonlSink::create(&path) {
                Ok(sink) => tee.push(Box::new(sink)),
                Err(e) => eprintln!("cannot create {path}: {e}; telemetry disabled"),
            }
        }
    }
    if std::env::var("DROPBACK_TELEMETRY_STDERR").is_ok() {
        tee.push(Box::new(StderrSink));
    }
    if tee.is_empty() {
        Telemetry::disabled()
    } else {
        Telemetry::with_sink(Box::new(tee))
    }
}

/// Arms the timeline tracer when `DROPBACK_TRACE=path.json` is set;
/// returns the path to hand back to [`finish_trace`] after the runs.
/// Call once at experiment start, before any training.
pub fn trace_from_env() -> Option<String> {
    let path = std::env::var("DROPBACK_TRACE")
        .ok()
        .filter(|p| !p.is_empty())?;
    trace::start_tracing();
    Some(path)
}

/// Stops tracing and writes the collected timeline as Chrome trace-event
/// JSON. Failures are reported on stderr, not fatal — a repro binary's
/// tables are still valid without its profile.
pub fn finish_trace(path: &str) {
    trace::stop_tracing();
    let records = trace::take_trace();
    let write = |p: &str| -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(p)?);
        trace::write_chrome_trace(&mut out, &records)
    };
    match write(path) {
        Ok(()) => eprintln!("wrote {} trace events to {path}", records.len()),
        Err(e) => eprintln!("cannot write trace {path}: {e}"),
    }
}

/// A fixed-width text table that prints paper-reported values alongside
/// measured ones.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders an ASCII sparkline of a series (for convergence "figures").
pub fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|&v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

/// Prints a standard experiment banner.
pub fn banner(experiment: &str, what: &str) {
    println!("=== {experiment} — {what} ===");
    println!(
        "(seed {}; scale via DROPBACK_EPOCHS / DROPBACK_TRAIN / DROPBACK_TEST)",
        seed()
    );
    println!();
}

/// Shared training-run helpers for the experiment binaries.
pub mod runners {
    use dropback::prelude::*;

    /// Post-training compression of a variational-dropout network: weights
    /// with `log α > 3` are pruned (their eval-time value is 0), so the
    /// stored count is the complement. `log_sigma2` ranges themselves are
    /// training-time state, not shipped weights.
    pub fn vd_compression(net: &Network) -> f32 {
        let ps = net.store();
        let mut total = 0usize;
        let mut kept = 0usize;
        let ranges = ps.ranges();
        for r in ranges {
            if r.name().ends_with(".log_sigma2") {
                continue;
            }
            total += r.len();
            if let Some(ls) = ranges
                .iter()
                .find(|o| o.name() == r.name().replace(".weight", ".log_sigma2"))
            {
                if r.name().ends_with(".weight") && ls.len() == r.len() {
                    let w = ps.slice(r);
                    let s = ps.slice(ls);
                    kept += w
                        .iter()
                        .zip(s)
                        .filter(|(&w, &ls)| ls - (w * w + 1e-8).ln() <= 3.0)
                        .count();
                    continue;
                }
            }
            kept += r.len();
        }
        total as f32 / kept.max(1) as f32
    }

    /// Loads real MNIST from `$DROPBACK_MNIST_DIR` if set and valid,
    /// otherwise generates the synthetic stand-in (see DESIGN.md,
    /// substitution 1).
    pub fn mnist_data(n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
        if let Ok(dir) = std::env::var("DROPBACK_MNIST_DIR") {
            if let Ok((tr, te)) = dropback::data::load_mnist_idx(&dir) {
                eprintln!("using real MNIST from {dir}");
                return (tr, te);
            }
            eprintln!("DROPBACK_MNIST_DIR set but unreadable; falling back to synthetic");
        }
        synthetic_mnist(n_train, n_test, seed)
    }

    /// Standard MNIST training run with the paper's LR regime, scaled for
    /// the synthetic inputs (whose per-pixel variance exceeds real MNIST's,
    /// so the paper's 0.4 initial rate oscillates; 0.2 with the same decay
    /// profile is stable — recorded in EXPERIMENTS.md).
    pub fn run_mnist(
        net: Network,
        opt: impl Optimizer,
        train: &Dataset,
        test: &Dataset,
        epochs: usize,
    ) -> TrainReport {
        let cfg = TrainConfig::new(epochs, 64).lr(LrSchedule::StepDecay {
            initial: 0.2,
            factor: 0.5,
            every: (epochs / 5).max(1),
        });
        Trainer::new(cfg).run(net, opt, train, test)
    }

    /// Standard CIFAR-nano training run with the paper's LR regime scaled
    /// to the reduced epoch budget.
    pub fn run_cifar(
        net: Network,
        opt: impl Optimizer,
        train: &Dataset,
        test: &Dataset,
        epochs: usize,
    ) -> TrainReport {
        let cfg = TrainConfig::new(epochs, 32)
            .lr(LrSchedule::StepDecay {
                initial: 0.1,
                factor: 0.5,
                every: (epochs / 4).max(1),
            })
            .patience(None);
        Trainer::new(cfg).run(net, opt, train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&[&"a", &1.5]);
        t.row(&[&"long-name", &22]);
        let r = t.render();
        assert!(r.contains("name"));
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn env_fallbacks() {
        assert_eq!(env_usize("DROPBACK_NO_SUCH_VAR_XYZ", 7), 7);
    }

    #[test]
    fn telemetry_from_env_defaults_disabled() {
        std::env::remove_var("DROPBACK_TELEMETRY");
        std::env::remove_var("DROPBACK_TELEMETRY_STDERR");
        assert!(!telemetry_from_env().is_active());
    }

    #[test]
    fn vd_compression_counts_pruned_weights() {
        use dropback::prelude::*;
        let mut net = models::mnist_100_100_vd(5);
        // At init only near-zero weights exceed the log-α threshold, so
        // compression starts close to 1x.
        let before = crate::runners::vd_compression(&net);
        assert!((1.0..1.3).contains(&before), "{before}");
        // Force fc3's log σ² sky-high: its 1000 weights become pruned.
        let ranges = net.param_ranges();
        let ls = ranges
            .iter()
            .find(|r| r.name() == "fc3.log_sigma2")
            .unwrap()
            .clone();
        net.store_mut().params_mut()[ls.start()..ls.end()].fill(20.0);
        let after = crate::runners::vd_compression(&net);
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn sparkline_single_value() {
        assert_eq!(sparkline(&[0.5]).chars().count(), 1);
        assert_eq!(sparkline(&[]), "");
    }
}
