//! Activation and structural layers: ReLU, PReLU, Dropout, Flatten.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_prng::{InitScheme, Xorshift64};
use dropback_tensor::Tensor;

/// Elementwise ReLU.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Relu::backward called before forward");
        dout.zip(&x, |g, v| if v > 0.0 { g } else { 0.0 })
    }
}

/// Parametric ReLU with one learned slope per channel.
///
/// The slope initializes to a constant (0.25), so DropBack can regenerate
/// it — the paper calls out PReLU as a layer type that *only* DropBack can
/// prune (§2.1). Works on `[n, c]` or `[n, c, h, w]` inputs (slope indexed
/// by the second dimension).
#[derive(Debug)]
pub struct PRelu {
    channels: usize,
    slope: ParamRange,
    cached_input: Option<Tensor>,
}

impl PRelu {
    /// Registers a PReLU over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(ps: &mut ParamStore, name: &str, channels: usize) -> Self {
        assert!(channels > 0, "PRelu needs at least one channel");
        let slope = ps.register(
            &format!("{name}.slope"),
            channels,
            InitScheme::Constant(0.25),
        );
        Self {
            channels,
            slope,
            cached_input: None,
        }
    }

    fn channel_of(&self, flat: usize, inner: usize) -> usize {
        (flat / inner) % self.channels
    }

    fn inner_size(&self, shape: &[usize]) -> usize {
        assert!(shape.len() >= 2, "PRelu input must have a channel dim");
        assert_eq!(shape[1], self.channels, "PRelu channel mismatch");
        shape[2..].iter().product::<usize>().max(1)
    }
}

impl Layer for PRelu {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, _mode: Mode) -> Tensor {
        let inner = self.inner_size(x.shape());
        let slopes = ps.slice(&self.slope);
        let mut y = x.clone();
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            if *v < 0.0 {
                *v *= slopes[self.channel_of(i, inner)];
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("PRelu::backward called before forward");
        let inner = self.inner_size(x.shape());
        let mut dslope = vec![0.0f32; self.channels];
        let (slopes, _) = ps.params_and_grads_mut(&self.slope);
        let slopes = slopes.to_vec();
        let mut dx = dout.clone();
        for (i, (g, &v)) in dx.data_mut().iter_mut().zip(x.data()).enumerate() {
            if v < 0.0 {
                let c = self.channel_of(i, inner);
                dslope[c] += *g * v;
                *g *= slopes[c];
            }
        }
        ps.accumulate_grad(&self.slope, &dslope);
        dx
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        vec![self.slope.clone()]
    }
}

/// Inverted dropout: at train time each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is the
/// identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: Xorshift64,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Self {
            p,
            rng: Xorshift64::new(seed),
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.next_f32() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        match self.mask.take() {
            None => dout.clone(),
            Some(mask) => {
                let mut dx = dout.clone();
                for (g, &m) in dx.data_mut().iter_mut().zip(&mask) {
                    *g *= m;
                }
                dx
            }
        }
    }
}

/// Reshapes `[n, ...]` to `[n, prod(...)]` (and un-flattens on backward).
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        self.cached_shape = Some(x.shape().to_vec());
        let n = x.shape()[0];
        let d: usize = x.shape()[1..].iter().product();
        x.clone().reshape(vec![n, d])
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("Flatten::backward called before forward");
        dout.clone().reshape(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_roundtrip() {
        let mut ps = ParamStore::new(1);
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 2., -3., 4.]);
        let y = l.forward(&x, &ps, Mode::Train);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let dx = l.backward(&Tensor::filled(vec![1, 4], 1.0), &mut ps);
        assert_eq!(dx.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn prelu_forward_uses_slope() {
        let mut ps = ParamStore::new(1);
        let mut l = PRelu::new(&mut ps, "act", 2);
        let x = Tensor::from_vec(vec![1, 2], vec![-4.0, 4.0]);
        let y = l.forward(&x, &ps, Mode::Train);
        assert_eq!(y.data(), &[-1.0, 4.0]); // 0.25 default slope
    }

    #[test]
    fn prelu_4d_channel_indexing() {
        let mut ps = ParamStore::new(1);
        let mut l = PRelu::new(&mut ps, "act", 2);
        let r = l.param_ranges()[0].clone();
        ps.params_mut()[r.start()..r.end()].copy_from_slice(&[0.0, 1.0]);
        let x = Tensor::filled(vec![1, 2, 2, 2], -1.0);
        let y = l.forward(&x, &ps, Mode::Train);
        // channel 0 slope 0 -> zeros; channel 1 slope 1 -> identity
        assert_eq!(&y.data()[..4], &[0.0; 4]);
        assert_eq!(&y.data()[4..], &[-1.0; 4]);
    }

    #[test]
    fn prelu_gradients_match_finite_difference() {
        let mut ps = ParamStore::new(1);
        let mut l = PRelu::new(&mut ps, "act", 3);
        let x = Tensor::from_vec(vec![2, 3], vec![-1., 2., -0.5, 0.3, -2., 1.]);
        let y = l.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let _ = l.backward(&y, &mut ps); // loss = 0.5||y||^2
        let r = l.param_ranges()[0].clone();
        let eps = 1e-3;
        for c in 0..3 {
            let gi = r.start() + c;
            let orig = ps.params()[gi];
            ps.params_mut()[gi] = orig + eps;
            let lp = 0.5 * l.forward(&x, &ps, Mode::Train).norm_sq();
            ps.params_mut()[gi] = orig - eps;
            let lm = 0.5 * l.forward(&x, &ps, Mode::Train).norm_sq();
            ps.params_mut()[gi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - ps.grads()[gi]).abs() < 1e-2, "c={c}");
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let ps = ParamStore::new(1);
        let mut l = Dropout::new(0.5, 1);
        let x = Tensor::from_fn(vec![4, 4], |i| i as f32);
        let y = l.forward(&x, &ps, Mode::Eval);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let ps = ParamStore::new(1);
        let mut l = Dropout::new(0.3, 7);
        let x = Tensor::filled(vec![100, 100], 1.0);
        let y = l.forward(&x, &ps, Mode::Train);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Some elements dropped, survivors scaled.
        assert!(y.data().contains(&0.0));
        assert!(y.data().iter().any(|&v| (v - 1.0 / 0.7).abs() < 1e-5));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut ps = ParamStore::new(1);
        let mut l = Dropout::new(0.5, 3);
        let x = Tensor::filled(vec![1, 64], 1.0);
        let y = l.forward(&x, &ps, Mode::Train);
        let dx = l.backward(&Tensor::filled(vec![1, 64], 1.0), &mut ps);
        for (a, b) in y.data().iter().zip(dx.data()) {
            assert_eq!(a, b); // both equal the mask value
        }
    }

    #[test]
    #[should_panic(expected = "dropout p must be in [0, 1)")]
    fn dropout_bad_p_panics() {
        Dropout::new(1.0, 1);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut ps = ParamStore::new(1);
        let mut l = Flatten::new();
        let x = Tensor::from_fn(vec![2, 3, 2, 2], |i| i as f32);
        let y = l.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        let dx = l.backward(&y, &mut ps);
        assert_eq!(dx.shape(), &[2, 3, 2, 2]);
        assert_eq!(dx, x);
    }
}
