//! Batch normalization over `[n, c]` or `[n, c, h, w]` inputs.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_prng::InitScheme;
use dropback_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Batch normalization with learned per-channel scale (γ, init 1) and shift
/// (β, init 0).
///
/// Both γ and β use constant init schemes, so DropBack can regenerate them
/// like any other weight — the paper notes this makes BN prunable by
/// DropBack when no other technique can prune it.
#[derive(Debug)]
pub struct BatchNorm {
    channels: usize,
    momentum: f32,
    gamma: ParamRange,
    beta: ParamRange,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    inner: usize,
}

impl BatchNorm {
    /// Registers a batch-norm over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(ps: &mut ParamStore, name: &str, channels: usize) -> Self {
        assert!(channels > 0, "BatchNorm needs at least one channel");
        let gamma = ps.register(
            &format!("{name}.gamma"),
            channels,
            InitScheme::Constant(1.0),
        );
        let beta = ps.register(&format!("{name}.beta"), channels, InitScheme::Constant(0.0));
        Self {
            channels,
            momentum: 0.9,
            gamma,
            beta,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// The γ (scale) parameter range — used by network slimming, which
    /// penalizes and thresholds BN scales.
    pub fn gamma_range(&self) -> &ParamRange {
        &self.gamma
    }

    /// The β (shift) parameter range.
    pub fn beta_range(&self) -> &ParamRange {
        &self.beta
    }

    fn inner_size(&self, shape: &[usize]) -> usize {
        assert!(shape.len() >= 2, "BatchNorm input must have a channel dim");
        assert_eq!(shape[1], self.channels, "BatchNorm channel mismatch");
        shape[2..].iter().product::<usize>().max(1)
    }

    /// Iterates `(flat index, channel)` pairs cheaply.
    #[inline]
    fn channel_of(&self, flat: usize, inner: usize) -> usize {
        (flat / inner) % self.channels
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        let inner = self.inner_size(x.shape());
        let n = x.shape()[0];
        let m = (n * inner) as f32;
        let gamma = ps.slice(&self.gamma);
        let beta = ps.slice(&self.beta);
        let mut y = x.clone();
        match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; self.channels];
                let mut var = vec![0.0f32; self.channels];
                for (i, &v) in x.data().iter().enumerate() {
                    mean[self.channel_of(i, inner)] += v;
                }
                for mv in &mut mean {
                    *mv /= m;
                }
                for (i, &v) in x.data().iter().enumerate() {
                    let c = self.channel_of(i, inner);
                    let d = v - mean[c];
                    var[c] += d * d;
                }
                for vv in &mut var {
                    *vv /= m;
                }
                let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
                let mut xhat = x.clone();
                for (i, v) in xhat.data_mut().iter_mut().enumerate() {
                    let c = self.channel_of(i, inner);
                    *v = (*v - mean[c]) * inv_std[c];
                }
                for (i, v) in y.data_mut().iter_mut().enumerate() {
                    let c = self.channel_of(i, inner);
                    *v = gamma[c] * xhat.data()[i] + beta[c];
                }
                for c in 0..self.channels {
                    self.running_mean[c] =
                        self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean[c];
                    self.running_var[c] =
                        self.momentum * self.running_var[c] + (1.0 - self.momentum) * var[c];
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std,
                    inner,
                });
            }
            Mode::Eval => {
                for (i, v) in y.data_mut().iter_mut().enumerate() {
                    let c = self.channel_of(i, inner);
                    let xhat = (*v - self.running_mean[c]) / (self.running_var[c] + EPS).sqrt();
                    *v = gamma[c] * xhat + beta[c];
                }
                self.cache = None;
            }
        }
        y
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm::backward called before a training forward");
        let inner = cache.inner;
        let n = dout.shape()[0];
        let m = (n * inner) as f32;
        let mut dgamma = vec![0.0f32; self.channels];
        let mut dbeta = vec![0.0f32; self.channels];
        for (i, &g) in dout.data().iter().enumerate() {
            let c = self.channel_of(i, inner);
            dgamma[c] += g * cache.xhat.data()[i];
            dbeta[c] += g;
        }
        let gamma = ps.slice(&self.gamma).to_vec();
        // dx = (γ·inv_std/m) · (m·dout − Σdout − x̂·Σ(dout·x̂))
        let mut dx = dout.clone();
        for (i, g) in dx.data_mut().iter_mut().enumerate() {
            let c = self.channel_of(i, inner);
            *g = gamma[c] * cache.inv_std[c] / m
                * (m * *g - dbeta[c] - cache.xhat.data()[i] * dgamma[c]);
        }
        ps.accumulate_grad(&self.gamma, &dgamma);
        ps.accumulate_grad(&self.beta, &dbeta);
        dx
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_output_is_normalized() {
        let mut ps = ParamStore::new(1);
        let mut bn = BatchNorm::new(&mut ps, "bn", 2);
        let x = Tensor::from_vec(vec![4, 2], vec![1., 10., 2., 20., 3., 30., 4., 40.]);
        let y = bn.forward(&x, &ps, Mode::Train);
        // Per-channel mean ~0, var ~1.
        for c in 0..2 {
            let vals: Vec<f32> = (0..4).map(|r| y.at2(r, c)).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 4.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut ps = ParamStore::new(1);
        let mut bn = BatchNorm::new(&mut ps, "bn", 1);
        let g = bn.gamma_range().clone();
        let b = bn.beta_range().clone();
        ps.params_mut()[g.start()] = 2.0;
        ps.params_mut()[b.start()] = 5.0;
        let x = Tensor::from_vec(vec![2, 1], vec![-1., 1.]);
        let y = bn.forward(&x, &ps, Mode::Train);
        // x̂ = [-1, 1] -> y = [3, 7]
        assert!((y.data()[0] - 3.0).abs() < 1e-3);
        assert!((y.data()[1] - 7.0).abs() < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut ps = ParamStore::new(1);
        let mut bn = BatchNorm::new(&mut ps, "bn", 1);
        // Several training passes to move the running stats.
        let x = Tensor::from_vec(vec![4, 1], vec![10., 12., 8., 10.]);
        for _ in 0..200 {
            let _ = bn.forward(&x, &ps, Mode::Train);
        }
        let y = bn.forward(&x, &ps, Mode::Eval);
        // Running mean ≈ 10, var ≈ 2 → output ≈ (x-10)/sqrt(2)
        assert!((y.data()[0] - 0.0).abs() < 0.1, "{:?}", y.data());
        assert!((y.data()[1] - 2.0 / 2.0f32.sqrt()).abs() < 0.15);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut ps = ParamStore::new(5);
        let mut bn = BatchNorm::new(&mut ps, "bn", 3);
        let x = Tensor::from_fn(vec![4, 3], |i| ((i * 7 % 11) as f32) * 0.3 - 1.0);
        let loss = |bn: &mut BatchNorm, ps: &ParamStore, x: &Tensor| -> f32 {
            let y = bn.forward(x, ps, Mode::Train);
            // Asymmetric loss so the mean/var paths matter.
            y.data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * v * (1.0 + 0.1 * i as f32))
                .sum::<f32>()
                * 0.5
        };
        let y = bn.forward(&x, &ps, Mode::Train);
        let dout = Tensor::from_fn(vec![4, 3], |i| y.data()[i] * (1.0 + 0.1 * i as f32));
        ps.zero_grads();
        let dx = bn.backward(&dout, &mut ps);
        let eps = 1e-3;
        // Input gradient check.
        for xi in [0usize, 4, 7, 11] {
            let mut x2 = x.clone();
            let orig = x2.data()[xi];
            x2.data_mut()[xi] = orig + eps;
            let lp = loss(&mut bn, &ps, &x2);
            x2.data_mut()[xi] = orig - eps;
            let lm = loss(&mut bn, &ps, &x2);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[xi]).abs() < 2e-2 * (1.0 + num.abs()),
                "x[{xi}]: {num} vs {}",
                dx.data()[xi]
            );
        }
        // Gamma gradient check.
        let g = bn.gamma_range().clone();
        for c in 0..3 {
            let gi = g.start() + c;
            let orig = ps.params()[gi];
            ps.params_mut()[gi] = orig + eps;
            let lp = loss(&mut bn, &ps, &x);
            ps.params_mut()[gi] = orig - eps;
            let lm = loss(&mut bn, &ps, &x);
            ps.params_mut()[gi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ps.grads()[gi]).abs() < 2e-2 * (1.0 + num.abs()),
                "γ[{c}]"
            );
        }
    }

    #[test]
    fn four_d_normalizes_per_channel() {
        let mut ps = ParamStore::new(1);
        let mut bn = BatchNorm::new(&mut ps, "bn", 2);
        let x = Tensor::from_fn(vec![2, 2, 2, 2], |i| {
            if (i / 4) % 2 == 0 {
                5.0
            } else {
                i as f32
            }
        });
        let y = bn.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 2, 2, 2]);
        // Channel 0 planes are constant 5.0 -> normalized output 0.
        for n in 0..2 {
            for j in 0..4 {
                assert!(y.data()[n * 8 + j].abs() < 1e-2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let mut ps = ParamStore::new(1);
        let mut bn = BatchNorm::new(&mut ps, "bn", 3);
        bn.forward(&Tensor::zeros(vec![2, 4]), &ps, Mode::Train);
    }
}
