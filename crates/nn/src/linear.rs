//! Fully-connected layer.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_prng::InitScheme;
use dropback_tensor::{matmul, matmul_nt, matmul_tn, Tensor};

/// A fully-connected layer: `y = x · Wᵀ + b` with `W: [out, in]`.
///
/// Weights use LeCun scaled-normal initialization (the paper's choice);
/// biases initialize to zero (a constant scheme, so DropBack can regenerate
/// them for free).
#[derive(Debug)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    weight: ParamRange,
    bias: Option<ParamRange>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Registers a `in_dim → out_dim` layer named `name` in `ps`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(ps: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        Self::with_init(ps, name, in_dim, out_dim, InitScheme::lecun_normal(in_dim))
    }

    /// Same as [`Linear::new`] with an explicit weight-init scheme.
    pub fn with_init(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        scheme: InitScheme,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "zero-sized linear layer");
        let weight = ps.register(&format!("{name}.weight"), in_dim * out_dim, scheme);
        let bias = Some(ps.register(&format!("{name}.bias"), out_dim, InitScheme::Constant(0.0)));
        Self {
            in_dim,
            out_dim,
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn weight_tensor(&self, ps: &ParamStore) -> Tensor {
        Tensor::from_vec(
            vec![self.out_dim, self.in_dim],
            ps.slice(&self.weight).to_vec(),
        )
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, _mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 2, "linear input must be [n, d]");
        assert_eq!(x.shape()[1], self.in_dim, "linear input dim");
        let w = self.weight_tensor(ps);
        let mut y = matmul_nt(x, &w);
        if let Some(b) = &self.bias {
            let bias = ps.slice(b);
            for row in y.data_mut().chunks_exact_mut(self.out_dim) {
                for (v, &bv) in row.iter_mut().zip(bias) {
                    *v += bv;
                }
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Linear::backward called before forward");
        // dW = doutᵀ · x  ([out, in])
        let dw = matmul_tn(dout, &x);
        ps.accumulate_grad(&self.weight, dw.data());
        if let Some(b) = &self.bias {
            let db = dout.sum_rows();
            ps.accumulate_grad(b, db.data());
        }
        // dx = dout · W  ([n, in])
        let w = self.weight_tensor(ps);
        matmul(dout, &w)
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        let mut v = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        ParamStore::new(42)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut ps = store();
        let mut l = Linear::new(&mut ps, "fc", 3, 2);
        // Force known weights/bias.
        let w = l.param_ranges()[0].clone();
        let b = l.param_ranges()[1].clone();
        ps.params_mut()[w.start()..w.end()].copy_from_slice(&[1., 0., 0., 0., 1., 0.]);
        ps.params_mut()[b.start()..b.end()].copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1, 3], vec![2., 3., 4.]);
        let y = l.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 2.5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut ps = store();
        let mut l = Linear::new(&mut ps, "fc", 4, 3);
        let x = Tensor::from_fn(vec![2, 4], |i| (i as f32 * 0.37).sin());
        // Loss = 0.5 * ||y||^2  =>  dout = y.
        let y = l.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let dx = l.backward(&y, &mut ps);
        let eps = 1e-3;
        // Check a few weight gradients numerically.
        let wrange = l.param_ranges()[0].clone();
        for idx in [0usize, 5, 11] {
            let gi = wrange.start() + idx;
            let orig = ps.params()[gi];
            ps.params_mut()[gi] = orig + eps;
            let lp = {
                let y = l.forward(&x, &ps, Mode::Train);
                0.5 * y.norm_sq()
            };
            ps.params_mut()[gi] = orig - eps;
            let lm = {
                let y = l.forward(&x, &ps, Mode::Train);
                0.5 * y.norm_sq()
            };
            ps.params_mut()[gi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = ps.grads()[gi];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "{num} vs {ana}"
            );
        }
        // And an input gradient.
        let xi = 3;
        let mut x2 = x.clone();
        let orig = x2.data()[xi];
        x2.data_mut()[xi] = orig + eps;
        let lp = 0.5 * l.forward(&x2, &ps, Mode::Train).norm_sq();
        x2.data_mut()[xi] = orig - eps;
        let lm = 0.5 * l.forward(&x2, &ps, Mode::Train).norm_sq();
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - dx.data()[xi]).abs() < 1e-2 * (1.0 + num.abs()));
    }

    #[test]
    fn bias_gradient_is_row_sum() {
        let mut ps = store();
        let mut l = Linear::new(&mut ps, "fc", 2, 2);
        let x = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let _ = l.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let dout = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let _ = l.backward(&dout, &mut ps);
        let b = l.param_ranges()[1].clone();
        assert_eq!(ps.grad_slice(&b), &[9., 12.]);
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_before_forward_panics() {
        let mut ps = store();
        let mut l = Linear::new(&mut ps, "fc", 2, 2);
        l.backward(&Tensor::zeros(vec![1, 2]), &mut ps);
    }

    #[test]
    fn param_count() {
        let mut ps = store();
        let _ = Linear::new(&mut ps, "fc", 300, 100);
        assert_eq!(ps.len(), 300 * 100 + 100);
    }
}
