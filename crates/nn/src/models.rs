//! The paper's evaluation networks.
//!
//! MNIST models match the paper's parameter counts exactly
//! (MNIST-100-100: 89,610 params; LeNet-300-100: 266,610 params). The
//! CIFAR models are architecture-faithful *nano* versions of VGG-S,
//! DenseNet, and WRN-28-10 — same topology family, scaled to CPU-trainable
//! sizes (DESIGN.md, substitution 3). All weight initialization flows
//! through the regenerable `ParamStore`, which is what DropBack prunes
//! against.

use crate::act::{Dropout, Flatten, Relu};
use crate::blocks::{DenseBlock, ResidualBlock, Transition};
use crate::conv_layer::Conv2d;
use crate::linear::Linear;
use crate::network::Network;
use crate::param::ParamStore;
use crate::pool::{GlobalAvgPool, MaxPool2d};
use crate::sequential::Sequential;
use crate::vardrop::VarDropLinear;

/// MNIST-100-100: the paper's ~90k-parameter MLP
/// (784 → 100 → 100 → 10; exactly 89,610 parameters).
pub fn mnist_100_100(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let seq = Sequential::new()
        .push(Linear::new(&mut ps, "fc1", 784, 100))
        .push(Relu::new())
        .push(Linear::new(&mut ps, "fc2", 100, 100))
        .push(Relu::new())
        .push(Linear::new(&mut ps, "fc3", 100, 10));
    Network::new("mnist-100-100", seq, ps)
}

/// LeNet-300-100: the classic 784 → 300 → 100 → 10 MLP
/// (266,610 parameters; the paper rounds to "approximately 266,600").
pub fn lenet_300_100(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let seq = Sequential::new()
        .push(Linear::new(&mut ps, "fc1", 784, 300))
        .push(Relu::new())
        .push(Linear::new(&mut ps, "fc2", 300, 100))
        .push(Relu::new())
        .push(Linear::new(&mut ps, "fc3", 100, 10));
    Network::new("lenet-300-100", seq, ps)
}

/// Variational-dropout variant of MNIST-100-100 (all three FC layers carry
/// per-weight dropout rates) — the paper's variational-dropout baseline.
pub fn mnist_100_100_vd(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let seq = Sequential::new()
        .push(VarDropLinear::new(&mut ps, "fc1", 784, 100, seed ^ 0x11))
        .push(Relu::new())
        .push(VarDropLinear::new(&mut ps, "fc2", 100, 100, seed ^ 0x22))
        .push(Relu::new())
        .push(VarDropLinear::new(&mut ps, "fc3", 100, 10, seed ^ 0x33));
    Network::new("mnist-100-100-vd", seq, ps)
}

/// Spatial size of CIFAR-like inputs the nano models expect.
pub const CIFAR_NANO_HW: usize = 16;

/// VGG-S-nano: a scaled-down VGG-S (conv stacks with BN + dropout and two
/// FC layers including the output — the paper's reduced VGG-16 variant).
/// Input: `[n, 3, 16, 16]`. ~160k parameters — wide enough relative to the
/// synthetic task that the paper's 3–5× compression points stay in the
/// over-parameterized regime.
pub fn vgg_s_nano(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let seq = Sequential::new()
        .push(Conv2d::new(&mut ps, "conv1a", 3, 24, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn1a", 24))
        .push(Relu::new())
        .push(Conv2d::new(&mut ps, "conv1b", 24, 24, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn1b", 24))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2)) // 16 -> 8
        .push(Conv2d::new(&mut ps, "conv2a", 24, 48, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn2a", 48))
        .push(Relu::new())
        .push(Conv2d::new(&mut ps, "conv2b", 48, 48, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn2b", 48))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2)) // 8 -> 4
        .push(Conv2d::new(&mut ps, "conv3a", 48, 96, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn3a", 96))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2)) // 4 -> 2
        .push(Flatten::new())
        .push(Dropout::new(0.5, seed ^ 0xD0))
        .push(Linear::new(&mut ps, "fc1", 96 * 2 * 2, 192))
        .push(Relu::new())
        .push(Dropout::new(0.5, seed ^ 0xD1))
        .push(Linear::new(&mut ps, "fc2", 192, 10));
    Network::new("vgg-s-nano", seq, ps)
}

/// VGG-S-nano with variational dropout on both FC layers (the
/// configuration the paper's Figure 4 compares against).
pub fn vgg_s_nano_vd(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let seq = Sequential::new()
        .push(Conv2d::new(&mut ps, "conv1a", 3, 24, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn1a", 24))
        .push(Relu::new())
        .push(Conv2d::new(&mut ps, "conv1b", 24, 24, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn1b", 24))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(&mut ps, "conv2a", 24, 48, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn2a", 48))
        .push(Relu::new())
        .push(Conv2d::new(&mut ps, "conv2b", 48, 48, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn2b", 48))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(&mut ps, "conv3a", 48, 96, 3, 1, 1).without_bias())
        .push(crate::norm::BatchNorm::new(&mut ps, "bn3a", 96))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Flatten::new())
        .push(VarDropLinear::new(
            &mut ps,
            "fc1",
            96 * 2 * 2,
            192,
            seed ^ 0xE0,
        ))
        .push(Relu::new())
        .push(VarDropLinear::new(&mut ps, "fc2", 192, 10, seed ^ 0xE1));
    Network::new("vgg-s-nano-vd", seq, ps)
}

/// DenseNet-nano: initial conv, two dense blocks (growth 12) with a
/// compressing transition, BN+ReLU head, global average pool, linear
/// classifier. Input: `[n, 3, 16, 16]`. ~65k parameters.
pub fn densenet_nano(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let mut seq =
        Sequential::new().push(Conv2d::new(&mut ps, "conv0", 3, 16, 3, 1, 1).without_bias());
    let block1 = DenseBlock::new(&mut ps, "dense1", 16, 4, 12); // -> 64 ch
    let b1_out = block1.out_channels();
    seq = seq.push(block1);
    let trans = Transition::new(&mut ps, "trans1", b1_out, 32); // 16x16 -> 8x8
    seq = seq.push(trans);
    let block2 = DenseBlock::new(&mut ps, "dense2", 32, 4, 12); // -> 80 ch
    let b2_out = block2.out_channels();
    seq = seq.push(block2);
    let seq = seq
        .push(crate::norm::BatchNorm::new(&mut ps, "bn_head", b2_out))
        .push(Relu::new())
        .push(GlobalAvgPool::new())
        .push(Linear::new(&mut ps, "fc", b2_out, 10));
    Network::new("densenet-nano", seq, ps)
}

/// WRN-nano: a wide-residual-network stub of WRN-28-10 — three groups of
/// pre-activation residual blocks with widening factor `width`, strides
/// 1/2/2, BN+ReLU head, global pool, linear classifier.
/// Input: `[n, 3, 16, 16]`. ~195k parameters at `width = 1`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn wrn_nano(seed: u64, width: usize) -> Network {
    assert!(width > 0, "width must be positive");
    let mut ps = ParamStore::new(seed);
    let w = [16 * width, 32 * width, 64 * width];
    // Strided stem: quarters the spatial compute of every group while
    // keeping the residual structure and parameter layout (nano budget).
    let mut seq =
        Sequential::new().push(Conv2d::new(&mut ps, "conv0", 3, 16, 3, 2, 1).without_bias());
    let mut in_ch = 16;
    for (g, &out_ch) in w.iter().enumerate() {
        let stride = if g == 0 { 1 } else { 2 };
        seq = seq.push(ResidualBlock::new(
            &mut ps,
            &format!("g{g}b0"),
            in_ch,
            out_ch,
            stride,
        ));
        seq = seq.push(ResidualBlock::new(
            &mut ps,
            &format!("g{g}b1"),
            out_ch,
            out_ch,
            1,
        ));
        in_ch = out_ch;
    }
    let seq = seq
        .push(crate::norm::BatchNorm::new(&mut ps, "bn_head", in_ch))
        .push(Relu::new())
        .push(GlobalAvgPool::new())
        .push(Linear::new(&mut ps, "fc", in_ch, 10));
    Network::new("wrn-nano", seq, ps)
}

/// DenseNet-nano with variational-dropout convolutions in both dense
/// blocks — the configuration the paper reports as failing to converge
/// ("90% error") under variational dropout.
pub fn densenet_nano_vd(seed: u64) -> Network {
    let mut ps = ParamStore::new(seed);
    let vd = Some(seed ^ 0xF00D);
    let mut seq =
        Sequential::new().push(Conv2d::new(&mut ps, "conv0", 3, 16, 3, 1, 1).without_bias());
    let block1 = DenseBlock::with_variational(&mut ps, "dense1", 16, 4, 12, vd);
    let b1_out = block1.out_channels();
    seq = seq.push(block1);
    seq = seq.push(Transition::new(&mut ps, "trans1", b1_out, 32));
    let block2 = DenseBlock::with_variational(&mut ps, "dense2", 32, 4, 12, vd);
    let b2_out = block2.out_channels();
    seq = seq.push(block2);
    let seq = seq
        .push(crate::norm::BatchNorm::new(&mut ps, "bn_head", b2_out))
        .push(Relu::new())
        .push(GlobalAvgPool::new())
        .push(Linear::new(&mut ps, "fc", b2_out, 10));
    Network::new("densenet-nano-vd", seq, ps)
}

/// WRN-nano with variational-dropout 3×3 convolutions in every residual
/// block — the paper's diverging VD-on-WRN configuration.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn wrn_nano_vd(seed: u64, width: usize) -> Network {
    assert!(width > 0, "width must be positive");
    let mut ps = ParamStore::new(seed);
    let vd = Some(seed ^ 0xBEEF);
    let w = [16 * width, 32 * width, 64 * width];
    let mut seq =
        Sequential::new().push(Conv2d::new(&mut ps, "conv0", 3, 16, 3, 2, 1).without_bias());
    let mut in_ch = 16;
    for (g, &out_ch) in w.iter().enumerate() {
        let stride = if g == 0 { 1 } else { 2 };
        seq = seq.push(ResidualBlock::with_variational(
            &mut ps,
            &format!("g{g}b0"),
            in_ch,
            out_ch,
            stride,
            vd,
        ));
        seq = seq.push(ResidualBlock::with_variational(
            &mut ps,
            &format!("g{g}b1"),
            out_ch,
            out_ch,
            1,
            vd,
        ));
        in_ch = out_ch;
    }
    let seq = seq
        .push(crate::norm::BatchNorm::new(&mut ps, "bn_head", in_ch))
        .push(Relu::new())
        .push(GlobalAvgPool::new())
        .push(Linear::new(&mut ps, "fc", in_ch, 10));
    Network::new("wrn-nano-vd", seq, ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use dropback_tensor::Tensor;

    #[test]
    fn vd_conv_models_forward_and_backward() {
        for mut net in [densenet_nano_vd(3), wrn_nano_vd(3, 1)] {
            let x = Tensor::filled(vec![2, 3, CIFAR_NANO_HW, CIFAR_NANO_HW], 0.1);
            let (loss, _) = net.loss_backward(&x, &[1, 7]);
            assert!(loss.is_finite(), "{}", net.name());
            let kl = net.kl_backward(1e-4);
            assert!(kl > 0.0, "{} should carry KL mass", net.name());
        }
    }

    #[test]
    fn mnist_100_100_matches_paper_param_count() {
        let net = mnist_100_100(1);
        assert_eq!(net.num_params(), 89_610); // Table 2's "Total" row
    }

    #[test]
    fn lenet_300_100_matches_paper_param_count() {
        let net = lenet_300_100(1);
        assert_eq!(net.num_params(), 266_610);
    }

    #[test]
    fn mlp_forward_shapes() {
        for mut net in [mnist_100_100(2), lenet_300_100(2), mnist_100_100_vd(2)] {
            let x = Tensor::zeros(vec![3, 784]);
            assert_eq!(net.forward(&x, Mode::Eval).shape(), &[3, 10]);
        }
    }

    #[test]
    fn cifar_models_forward_and_backward() {
        for mut net in [
            vgg_s_nano(3),
            vgg_s_nano_vd(3),
            densenet_nano(3),
            wrn_nano(3, 1),
        ] {
            let x = Tensor::filled(vec![2, 3, CIFAR_NANO_HW, CIFAR_NANO_HW], 0.1);
            let logits = net.forward(&x, Mode::Eval);
            assert_eq!(logits.shape(), &[2, 10], "{}", net.name());
            let (loss, _) = net.loss_backward(&x, &[1, 7]);
            assert!(loss.is_finite(), "{}", net.name());
            assert!(
                net.store().grads().iter().any(|&g| g != 0.0),
                "{} has zero grads",
                net.name()
            );
        }
    }

    #[test]
    fn model_sizes_are_reasonable() {
        assert!(vgg_s_nano(1).num_params() > 100_000);
        assert!(vgg_s_nano(1).num_params() < 250_000);
        assert!(densenet_nano(1).num_params() > 20_000);
        assert!(densenet_nano(1).num_params() < 120_000);
        assert!(wrn_nano(1, 1).num_params() > 100_000);
        assert!(wrn_nano(1, 2).num_params() > wrn_nano(1, 1).num_params());
    }

    #[test]
    fn per_layer_names_match_table2() {
        let net = mnist_100_100(1);
        let names: Vec<String> = net
            .param_ranges()
            .iter()
            .map(|r| r.name().to_string())
            .collect();
        assert!(names.contains(&"fc1.weight".to_string()));
        assert!(names.contains(&"fc3.bias".to_string()));
    }
}
