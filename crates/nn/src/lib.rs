//! Neural-network substrate for the DropBack reproduction.
//!
//! The defining constraint from the paper: *every* parameter's
//! initialization value must be recomputable in O(1) from a seed and the
//! parameter's index, because DropBack regenerates untracked weights instead
//! of storing them. That pushes the design toward a flat, globally-indexed
//! parameter arena:
//!
//! * [`ParamStore`] — one flat `params`/`grads` vector pair for the whole
//!   network. Each layer registers a named range with an [`InitScheme`];
//!   the store can regenerate the initial value of any global index without
//!   touching the stored weights.
//! * [`Layer`] — explicit `forward`/`backward` with caches owned by the
//!   layer. No autograd tape: the backward formulas are hand-derived and
//!   finite-difference-tested, which is what lets the optimizer see plain
//!   flat gradient vectors.
//! * [`Network`] — a [`Sequential`] stack plus its store, with
//!   cross-entropy training helpers.
//! * [`models`] — the paper's evaluation networks: MNIST-100-100,
//!   LeNet-300-100, and architecture-faithful nano versions of VGG-S,
//!   DenseNet, and WRN-28-10 (see DESIGN.md for the scaling substitution).
//!
//! # Example
//!
//! ```
//! use dropback_nn::{models, Mode};
//! use dropback_tensor::Tensor;
//!
//! let mut net = models::mnist_100_100(42);
//! let x = Tensor::zeros(vec![4, 784]);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[4, 10]);
//! ```

#![deny(missing_docs)]

mod act;
mod act_extra;
mod blocks;
mod conv_layer;
pub mod gradcheck;
mod layer;
mod linear;
pub mod models;
mod network;
mod norm;
mod param;
mod pool;
mod sequential;
mod vardrop;
mod vardrop_conv;

pub use act::{Dropout, Flatten, PRelu, Relu};
pub use act_extra::{Gelu, LayerNorm, Sigmoid, Tanh};
pub use blocks::{DenseBlock, ResidualBlock, Transition};
pub use conv_layer::Conv2d;
pub use dropback_prng::InitScheme;
pub use layer::{Layer, Mode};
pub use linear::Linear;
pub use network::Network;
pub use norm::BatchNorm;
pub use param::{ParamRange, ParamStore};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use sequential::Sequential;
pub use vardrop::VarDropLinear;
pub use vardrop_conv::VarDropConv2d;
