//! Variational-dropout linear layer (baseline from the paper's evaluation).
//!
//! Implements sparse variational dropout in the style of Kingma et al. 2015 /
//! Molchanov et al. 2017, which the paper compares against: each weight `w`
//! carries a learned noise variance `σ² = exp(log_sigma2)`; the per-weight
//! dropout rate is `α = σ²/w²`, and weights whose `log α` exceeds a threshold
//! are considered pruned. Training uses the local reparameterization trick
//! (noise sampled on pre-activations, not weights), and the KL regularizer
//! uses Molchanov's tight approximation.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_prng::{BoxMuller, InitScheme, Xorshift128};
use dropback_tensor::{matmul, matmul_nt, matmul_tn, Tensor};

/// `log α` above which a weight counts as pruned (the conventional 3.0,
/// i.e. α > e³ ≈ 20 — over 95% dropout).
pub const LOG_ALPHA_PRUNE_THRESHOLD: f32 = 3.0;

const VAR_EPS: f32 = 1e-8;
const LOG_SIGMA2_INIT: f32 = -8.0;

/// Accumulates the Molchanov-approximation KL gradient for a
/// (weight, log σ²) range pair, scaled by `scale`; returns the scaled KL.
/// Shared by the linear and convolutional VD layers.
pub(crate) fn kl_grad_for(
    ps: &mut ParamStore,
    weight: &ParamRange,
    log_sigma2: &ParamRange,
    scale: f32,
) -> f32 {
    const K1: f32 = 0.63576;
    const K2: f32 = 1.87320;
    const K3: f32 = 1.48695;
    let n = weight.len();
    let mut dw = vec![0.0f32; n];
    let mut dls = vec![0.0f32; n];
    let mut kl_total = 0.0f64;
    {
        let w = ps.slice(weight);
        let ls = ps.slice(log_sigma2);
        for i in 0..n {
            let la = ls[i] - (w[i] * w[i] + VAR_EPS).ln();
            let sig = 1.0 / (1.0 + (-(K2 + K3 * la)).exp());
            let neg_kl = K1 * sig - 0.5 * (1.0 + (-la).exp()).ln() - K1;
            kl_total -= neg_kl as f64;
            // dKL/d(log α)
            let dkl_dla = -(K1 * K3 * sig * (1.0 - sig)) - 0.5 / (1.0 + la.exp());
            // d(log α)/d(log σ²) = 1 ; d(log α)/dw = −2w/(w²+ε)
            dls[i] = scale * dkl_dla;
            dw[i] = scale * dkl_dla * (-2.0 * w[i] / (w[i] * w[i] + VAR_EPS));
        }
    }
    ps.accumulate_grad(weight, &dw);
    ps.accumulate_grad(log_sigma2, &dls);
    scale * kl_total as f32
}

/// A fully-connected layer with per-weight variational dropout.
pub struct VarDropLinear {
    in_dim: usize,
    out_dim: usize,
    weight: ParamRange,
    log_sigma2: ParamRange,
    noise: BoxMuller<Xorshift128>,
    cache: Option<VdCache>,
}

impl std::fmt::Debug for VarDropLinear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VarDropLinear({} -> {})", self.in_dim, self.out_dim)
    }
}

struct VdCache {
    input: Tensor,
    input_sq: Tensor,
    eps: Tensor,
    std: Tensor,
}

impl VarDropLinear {
    /// Registers a variational-dropout linear layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(ps: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "zero-sized layer");
        let weight = ps.register(
            &format!("{name}.weight"),
            in_dim * out_dim,
            InitScheme::lecun_normal(in_dim),
        );
        let log_sigma2 = ps.register(
            &format!("{name}.log_sigma2"),
            in_dim * out_dim,
            InitScheme::Constant(LOG_SIGMA2_INIT),
        );
        Self {
            in_dim,
            out_dim,
            weight,
            log_sigma2,
            noise: BoxMuller::new(Xorshift128::new(seed)),
            cache: None,
        }
    }

    /// Per-weight `log α = log σ² − log w²`.
    pub fn log_alpha(&self, ps: &ParamStore) -> Vec<f32> {
        let w = ps.slice(&self.weight);
        let ls = ps.slice(&self.log_sigma2);
        w.iter()
            .zip(ls)
            .map(|(&w, &ls)| ls - (w * w + VAR_EPS).ln())
            .collect()
    }

    /// Fraction of weights with `log α` above the pruning threshold.
    pub fn sparsity(&self, ps: &ParamStore) -> f32 {
        let la = self.log_alpha(ps);
        la.iter()
            .filter(|&&v| v > LOG_ALPHA_PRUNE_THRESHOLD)
            .count() as f32
            / la.len() as f32
    }

    /// Accumulates the KL-divergence gradient (Molchanov et al. 2017
    /// approximation), scaled by `scale` (the trainer anneals this).
    ///
    /// The KL decreases with `log α`, so its gradient pushes weights toward
    /// higher dropout rates — the mechanism by which variational dropout
    /// sparsifies. Returns the (scaled) KL value for monitoring.
    pub fn accumulate_kl_grad(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        kl_grad_for(ps, &self.weight, &self.log_sigma2, scale)
    }

    fn weight_tensor(&self, ps: &ParamStore) -> Tensor {
        Tensor::from_vec(
            vec![self.out_dim, self.in_dim],
            ps.slice(&self.weight).to_vec(),
        )
    }

    /// σ² as a `[out, in]` tensor.
    fn sigma2_tensor(&self, ps: &ParamStore) -> Tensor {
        Tensor::from_vec(
            vec![self.out_dim, self.in_dim],
            ps.slice(&self.log_sigma2).iter().map(|v| v.exp()).collect(),
        )
    }
}

impl Layer for VarDropLinear {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 2, "VarDropLinear input must be [n, d]");
        assert_eq!(x.shape()[1], self.in_dim, "input dim mismatch");
        let w = self.weight_tensor(ps);
        match mode {
            Mode::Eval => {
                // Deterministic inference with pruned weights masked out.
                let la = self.log_alpha(ps);
                let masked = Tensor::from_vec(
                    vec![self.out_dim, self.in_dim],
                    w.data()
                        .iter()
                        .zip(&la)
                        .map(|(&w, &a)| {
                            if a > LOG_ALPHA_PRUNE_THRESHOLD {
                                0.0
                            } else {
                                w
                            }
                        })
                        .collect(),
                );
                self.cache = None;
                matmul_nt(x, &masked)
            }
            Mode::Train => {
                // Local reparameterization: y = x·Wᵀ + sqrt(x²·(σ²)ᵀ)·ε.
                let mean = matmul_nt(x, &w);
                let x_sq = x.map(|v| v * v);
                let sigma2 = self.sigma2_tensor(ps);
                let var = matmul_nt(&x_sq, &sigma2);
                let std = var.map(|v| (v + VAR_EPS).sqrt());
                let eps = Tensor::from_fn(mean.shape().to_vec(), |_| self.noise.next_normal());
                let y = mean.zip(&(&std * &eps), |m, noise| m + noise);
                self.cache = Some(VdCache {
                    input: x.clone(),
                    input_sq: x_sq,
                    eps,
                    std,
                });
                y
            }
        }
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("VarDropLinear::backward called before a training forward");
        // Mean path: standard linear backward.
        let dw = matmul_tn(dout, &cache.input);
        // Variance path: dvar = dout·ε / (2·std); then
        //   dσ²[o,i] = Σ_n dvar[n,o]·x²[n,i]   and   dx² = dvar·σ².
        let dvar = dout
            .zip(&cache.eps, |g, e| g * e)
            .zip(&cache.std, |ge, s| ge / (2.0 * s));
        let sigma2 = self.sigma2_tensor(ps);
        let dsigma2 = matmul_tn(&dvar, &cache.input_sq);
        // d log σ² = dσ² · σ²
        let dlog_sigma2 = dsigma2.zip(&sigma2, |d, s| d * s);
        ps.accumulate_grad(&self.weight, dw.data());
        ps.accumulate_grad(&self.log_sigma2, dlog_sigma2.data());
        // dx = dout·W + (dvar·σ²) ⊙ 2x
        let w = self.weight_tensor(ps);
        let mut dx = matmul(dout, &w);
        let dx_var = matmul(&dvar, &sigma2);
        for ((d, &v), &xv) in dx
            .data_mut()
            .iter_mut()
            .zip(dx_var.data())
            .zip(cache.input.data())
        {
            *d += v * 2.0 * xv;
        }
        dx
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        vec![self.weight.clone(), self.log_sigma2.clone()]
    }

    fn kl_backward(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        self.accumulate_kl_grad(ps, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_deterministic_linear() {
        let mut ps = ParamStore::new(1);
        let mut l = VarDropLinear::new(&mut ps, "vd", 3, 2, 7);
        let x = Tensor::from_vec(vec![2, 3], vec![1., 0., -1., 0.5, 0.5, 0.5]);
        let a = l.forward(&x, &ps, Mode::Eval);
        let b = l.forward(&x, &ps, Mode::Eval);
        assert_eq!(a, b);
    }

    #[test]
    fn train_is_stochastic_but_mean_preserving() {
        let mut ps = ParamStore::new(1);
        let mut l = VarDropLinear::new(&mut ps, "vd", 4, 2, 9);
        // Crank the noise up so stochasticity is visible.
        let ls = l.param_ranges()[1].clone();
        ps.params_mut()[ls.start()..ls.end()].fill(-2.0);
        let x = Tensor::filled(vec![1, 4], 1.0);
        let eval = l.forward(&x, &ps, Mode::Eval);
        let runs: Vec<Tensor> = (0..200).map(|_| l.forward(&x, &ps, Mode::Train)).collect();
        assert!(runs.windows(2).any(|w| w[0] != w[1]), "no stochasticity");
        let mut mean = [0.0f64; 2];
        for r in &runs {
            for (m, &v) in mean.iter_mut().zip(r.data()) {
                *m += v as f64 / runs.len() as f64;
            }
        }
        for (m, &e) in mean.iter().zip(eval.data()) {
            assert!((m - e as f64).abs() < 0.2, "mean {m} vs eval {e}");
        }
    }

    #[test]
    fn high_log_alpha_masks_weights_at_eval() {
        let mut ps = ParamStore::new(1);
        let mut l = VarDropLinear::new(&mut ps, "vd", 2, 1, 3);
        let w = l.param_ranges()[0].clone();
        let ls = l.param_ranges()[1].clone();
        ps.params_mut()[w.start()..w.end()].copy_from_slice(&[1.0, 1.0]);
        // First weight: huge noise (pruned); second: tiny noise (kept).
        ps.params_mut()[ls.start()..ls.end()].copy_from_slice(&[10.0, -10.0]);
        let x = Tensor::from_vec(vec![1, 2], vec![5.0, 3.0]);
        let y = l.forward(&x, &ps, Mode::Eval);
        assert!((y.data()[0] - 3.0).abs() < 1e-5, "{:?}", y.data());
        assert!((l.sparsity(&ps) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn kl_grad_pushes_alpha_up() {
        let mut ps = ParamStore::new(1);
        let l = VarDropLinear::new(&mut ps, "vd", 4, 4, 3);
        ps.zero_grads();
        let kl = l.accumulate_kl_grad(&mut ps, 1.0);
        assert!(kl > 0.0, "KL should be positive at init, got {kl}");
        let ls = l.param_ranges()[1].clone();
        // Gradient of KL w.r.t. log σ² should be negative (descent raises α).
        for &g in ps.grad_slice(&ls) {
            assert!(g < 0.0, "KL grad {g} should push log σ² up");
        }
    }

    #[test]
    fn mean_path_gradient_matches_plain_linear() {
        // With σ² → 0 the layer degenerates to a plain linear layer, so the
        // weight gradient must match the standard formula.
        let mut ps = ParamStore::new(5);
        let mut l = VarDropLinear::new(&mut ps, "vd", 3, 2, 11);
        let ls = l.param_ranges()[1].clone();
        ps.params_mut()[ls.start()..ls.end()].fill(-30.0); // σ² ≈ 0
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0.5, 2.]);
        let _ = l.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let dout = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]);
        let _ = l.backward(&dout, &mut ps);
        let wr = l.param_ranges()[0].clone();
        let expected = matmul_tn(&dout, &x);
        for (g, e) in ps.grad_slice(&wr).iter().zip(expected.data()) {
            assert!((g - e).abs() < 1e-4, "{g} vs {e}");
        }
    }
}
