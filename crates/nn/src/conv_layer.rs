//! 2-D convolution layer over the fused im2col-GEMM kernels.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_prng::InitScheme;
use dropback_tensor::conv::{conv2d_backward, conv2d_forward, ConvGeom};
use dropback_tensor::Tensor;

/// A 2-D convolution (`[n, c, h, w]` → `[n, f, oh, ow]`) with He-normal
/// weight init and zero-constant bias init.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weight: ParamRange,
    bias: Option<ParamRange>,
    cache: Option<ConvCache>,
}

#[derive(Debug)]
struct ConvCache {
    geom: ConvGeom,
    // The backward pass re-reads conv patches from the input through the
    // fused GEMM pack, so the cache holds the input itself — kh·kw times
    // smaller than the im2col matrices the old path retained.
    input: Tensor,
}

impl Conv2d {
    /// Registers a convolution with square `kernel`, `stride`, and `pad`.
    ///
    /// # Panics
    ///
    /// Panics if channels or kernel are zero.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "zero-sized convolution"
        );
        let fan_in = in_channels * kernel * kernel;
        let weight = ps.register(
            &format!("{name}.weight"),
            out_channels * fan_in,
            InitScheme::he_normal(fan_in),
        );
        let bias = Some(ps.register(
            &format!("{name}.bias"),
            out_channels,
            InitScheme::Constant(0.0),
        ));
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            weight,
            bias,
            cache: None,
        }
    }

    /// Omits the bias (common when a batch-norm immediately follows).
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn weight_tensor(&self, ps: &ParamStore) -> Tensor {
        Tensor::from_vec(
            vec![
                self.out_channels,
                self.in_channels * self.kernel * self.kernel,
            ],
            ps.slice(&self.weight).to_vec(),
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, _mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 4, "conv input must be [n,c,h,w]");
        assert_eq!(x.shape()[1], self.in_channels, "conv channel mismatch");
        let geom = ConvGeom {
            c: self.in_channels,
            h: x.shape()[2],
            w: x.shape()[3],
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
            dilation: 1,
        };
        let w = self.weight_tensor(ps);
        let bias_vec = self.bias.as_ref().map(|b| ps.slice(b).to_vec());
        let y = conv2d_forward(x, &w, bias_vec.as_deref(), geom);
        self.cache = Some(ConvCache {
            geom,
            input: x.clone(),
        });
        y
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called before forward");
        let w = self.weight_tensor(ps);
        let (dx, dw, db) = conv2d_backward(dout, &w, &cache.input, cache.geom);
        debug_assert_eq!(dx.shape(), cache.input.shape());
        ps.accumulate_grad(&self.weight, dw.data());
        if let Some(b) = &self.bias {
            ps.accumulate_grad(b, &db);
        }
        dx
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        let mut v = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut ps = ParamStore::new(1);
        let mut conv = Conv2d::new(&mut ps, "c1", 3, 8, 3, 1, 1);
        let x = Tensor::zeros(vec![2, 3, 8, 8]);
        let y = conv.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn strided_shape() {
        let mut ps = ParamStore::new(1);
        let mut conv = Conv2d::new(&mut ps, "c1", 1, 4, 3, 2, 1);
        let x = Tensor::zeros(vec![1, 1, 8, 8]);
        let y = conv.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut ps = ParamStore::new(3);
        let mut conv = Conv2d::new(&mut ps, "c1", 2, 3, 3, 1, 1);
        let x = Tensor::from_fn(vec![1, 2, 4, 4], |i| ((i as f32) * 0.3).sin());
        let y = conv.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let dx = conv.backward(&y, &mut ps); // loss = 0.5||y||^2
        let eps = 1e-2;
        let wr = conv.param_ranges()[0].clone();
        for idx in [0usize, 7, 20, 40] {
            let gi = wr.start() + idx;
            let orig = ps.params()[gi];
            ps.params_mut()[gi] = orig + eps;
            let lp = 0.5 * conv.forward(&x, &ps, Mode::Train).norm_sq();
            ps.params_mut()[gi] = orig - eps;
            let lm = 0.5 * conv.forward(&x, &ps, Mode::Train).norm_sq();
            ps.params_mut()[gi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = ps.grads()[gi];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "w[{idx}]: {num} vs {ana}"
            );
        }
        // Input gradient spot-check.
        let xi = 9;
        let mut x2 = x.clone();
        let orig = x2.data()[xi];
        x2.data_mut()[xi] = orig + eps;
        let lp = 0.5 * conv.forward(&x2, &ps, Mode::Train).norm_sq();
        x2.data_mut()[xi] = orig - eps;
        let lm = 0.5 * conv.forward(&x2, &ps, Mode::Train).norm_sq();
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - dx.data()[xi]).abs() < 3e-2 * (1.0 + num.abs()));
    }

    #[test]
    fn without_bias_registers_fewer_params() {
        let mut ps = ParamStore::new(1);
        let conv = Conv2d::new(&mut ps, "c1", 2, 4, 3, 1, 1).without_bias();
        assert_eq!(conv.param_ranges().len(), 1);
    }

    #[test]
    fn bias_shifts_every_output_plane() {
        let mut ps = ParamStore::new(1);
        let mut conv = Conv2d::new(&mut ps, "c1", 1, 2, 1, 1, 0);
        let ranges = conv.param_ranges();
        let (w, b) = (ranges[0].clone(), ranges[1].clone());
        ps.params_mut()[w.start()..w.end()].copy_from_slice(&[0.0, 0.0]);
        ps.params_mut()[b.start()..b.end()].copy_from_slice(&[1.5, -2.0]);
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        let y = conv.forward(&x, &ps, Mode::Train);
        assert_eq!(&y.data()[..4], &[1.5; 4]);
        assert_eq!(&y.data()[4..], &[-2.0; 4]);
    }
}
