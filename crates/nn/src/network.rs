//! The [`Network`] type: a layer stack plus its parameter store, with
//! cross-entropy training helpers.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use crate::sequential::Sequential;
use dropback_data::Dataset;
use dropback_telemetry::Span;
use dropback_tensor::ops::softmax_cross_entropy;
use dropback_tensor::Tensor;

/// A trainable network: a [`Sequential`] stack and the [`ParamStore`]
/// holding its flat parameters.
#[derive(Debug)]
pub struct Network {
    name: String,
    seq: Sequential,
    ps: ParamStore,
}

impl Network {
    /// Wraps a stack and its store.
    pub fn new(name: &str, seq: Sequential, ps: ParamStore) -> Self {
        Self {
            name: name.to_string(),
            seq,
            ps,
        }
    }

    /// The model's name (e.g. `"lenet-300-100"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.ps.len()
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.ps
    }

    /// Mutable access to the parameter store (for optimizers).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    /// Splits the network into mutable layer-stack and store references —
    /// needed when a training loop drives both (e.g. variational dropout's
    /// KL pass).
    pub fn parts_mut(&mut self) -> (&mut Sequential, &mut ParamStore) {
        (&mut self.seq, &mut self.ps)
    }

    /// All registered parameter ranges.
    pub fn param_ranges(&self) -> Vec<ParamRange> {
        self.ps.ranges().to_vec()
    }

    /// Runs a forward pass.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.seq.forward(x, &self.ps, mode)
    }

    /// One training step's gradient computation: zeroes gradients, runs
    /// forward + softmax cross-entropy + backward, and returns
    /// `(mean loss, batch accuracy)`. The caller then applies an optimizer
    /// to the store.
    pub fn loss_backward(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f32) {
        self.ps.zero_grads();
        let (loss, dlogits, correct) = {
            let _span = Span::enter("forward");
            let logits = self.seq.forward(x, &self.ps, Mode::Train);
            let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
            let correct = logits
                .argmax_rows()
                .iter()
                .zip(labels)
                .filter(|(p, l)| p == l)
                .count();
            (loss, dlogits, correct)
        };
        {
            let _span = Span::enter("backward");
            let _ = self.seq.backward(&dlogits, &mut self.ps);
        }
        (loss, correct as f32 / labels.len() as f32)
    }

    /// Accumulates the network's variational (KL) regularizer gradients,
    /// scaled by `scale`; returns the scaled KL value (0 for networks
    /// without variational layers). Call between [`Network::loss_backward`]
    /// and the optimizer step.
    pub fn kl_backward(&mut self, scale: f32) -> f32 {
        self.seq.kl_backward(&mut self.ps, scale)
    }

    /// Classifies `x`, returning predicted class indices.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.forward(x, Mode::Eval).argmax_rows()
    }

    /// Renders a human-readable parameter summary (one line per registered
    /// range plus totals) — what `dropback-cli info` prints.
    pub fn summary(&self) -> String {
        let mut out = format!("{}: {} parameters\n", self.name, self.ps.len());
        for r in self.ps.ranges() {
            out.push_str(&format!(
                "  {:<28} {:>10}  init {:?}\n",
                r.name(),
                r.len(),
                r.scheme()
            ));
        }
        out
    }

    /// Evaluates accuracy over a dataset in batches of `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the dataset is empty.
    pub fn accuracy(&mut self, data: &Dataset, batch: usize) -> f32 {
        assert!(batch > 0 && !data.is_empty(), "empty evaluation");
        let _span = Span::enter("eval");
        let mut correct = 0usize;
        let mut start = 0;
        while start < data.len() {
            let end = (start + batch).min(data.len());
            let (x, labels) = data.batch(start, end);
            correct += self
                .predict(&x)
                .iter()
                .zip(&labels)
                .filter(|(p, l)| p == l)
                .count();
            start = end;
        }
        correct as f32 / data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::linear::Linear;

    fn tiny_net(seed: u64) -> Network {
        let mut ps = ParamStore::new(seed);
        let seq = Sequential::new()
            .push(Linear::new(&mut ps, "fc1", 4, 8))
            .push(Relu::new())
            .push(Linear::new(&mut ps, "fc2", 8, 3));
        Network::new("tiny", seq, ps)
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net(1);
        let x = Tensor::filled(vec![5, 4], 0.1);
        assert_eq!(net.forward(&x, Mode::Eval).shape(), &[5, 3]);
    }

    #[test]
    fn loss_backward_populates_grads() {
        let mut net = tiny_net(2);
        let x = Tensor::from_fn(vec![4, 4], |i| (i as f32 * 0.13).cos());
        let (loss, acc) = net.loss_backward(&x, &[0, 1, 2, 0]);
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
        assert!(net.store().grads().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn sgd_on_loss_backward_reduces_loss() {
        let mut net = tiny_net(3);
        let x = Tensor::from_fn(vec![8, 4], |i| ((i * 31 % 17) as f32) * 0.1);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let (loss0, _) = net.loss_backward(&x, &labels);
        for _ in 0..50 {
            let (_, _) = net.loss_backward(&x, &labels);
            let grads = net.store().grads().to_vec();
            for (p, g) in net.store_mut().params_mut().iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
        }
        let (loss1, _) = net.loss_backward(&x, &labels);
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn accuracy_on_degenerate_dataset() {
        let mut net = tiny_net(4);
        let data = Dataset::new(Tensor::filled(vec![6, 4], 0.5), vec![1; 6], 3);
        let acc = net.accuracy(&data, 4);
        // All inputs identical: accuracy is 0 or 1 depending on the argmax.
        assert!(acc == 0.0 || acc == 1.0);
    }
}
