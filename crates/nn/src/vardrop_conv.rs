//! Variational-dropout 2-D convolution (for the CIFAR baselines).
//!
//! Same per-weight noise model as [`crate::VarDropLinear`], lowered through
//! the fused im2col-GEMM like [`crate::Conv2d`]: the pre-activation mean is a convolution
//! with the weight means, the pre-activation variance is a convolution of
//! the squared inputs with `σ²` (local reparameterization), and noise is
//! sampled on the outputs. This is the configuration whose instability on
//! dense architectures (DenseNet, WRN) the paper reports as "90% error /
//! fails to converge".

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use crate::vardrop::LOG_ALPHA_PRUNE_THRESHOLD;
use dropback_prng::{BoxMuller, InitScheme, Xorshift128};
use dropback_tensor::conv::{conv2d_backward, conv2d_forward, ConvGeom};
use dropback_tensor::Tensor;

const VAR_EPS: f32 = 1e-8;
const LOG_SIGMA2_INIT: f32 = -8.0;

/// A 2-D convolution with per-weight variational dropout.
pub struct VarDropConv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weight: ParamRange,
    log_sigma2: ParamRange,
    noise: BoxMuller<Xorshift128>,
    cache: Option<VdConvCache>,
}

impl std::fmt::Debug for VarDropConv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VarDropConv2d({} -> {}, k{})",
            self.in_channels, self.out_channels, self.kernel
        )
    }
}

struct VdConvCache {
    geom: ConvGeom,
    // The backward pass re-reads patches (of x and of x², recomputed) via
    // the fused GEMM pack, so only the input itself is retained.
    input: Tensor,
    eps: Tensor,
    std: Tensor,
}

impl VarDropConv2d {
    /// Registers a VD convolution with square `kernel`, `stride`, `pad`.
    ///
    /// # Panics
    ///
    /// Panics if channels or kernel are zero.
    #[allow(clippy::too_many_arguments)] // geometry params mirror Conv2d::new
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "zero-sized convolution"
        );
        let fan_in = in_channels * kernel * kernel;
        let weight = ps.register(
            &format!("{name}.weight"),
            out_channels * fan_in,
            InitScheme::he_normal(fan_in),
        );
        let log_sigma2 = ps.register(
            &format!("{name}.log_sigma2"),
            out_channels * fan_in,
            InitScheme::Constant(LOG_SIGMA2_INIT),
        );
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            weight,
            log_sigma2,
            noise: BoxMuller::new(Xorshift128::new(seed)),
            cache: None,
        }
    }

    fn geom(&self, x: &Tensor) -> ConvGeom {
        ConvGeom {
            c: self.in_channels,
            h: x.shape()[2],
            w: x.shape()[3],
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
            dilation: 1,
        }
    }

    fn weight_tensor(&self, ps: &ParamStore) -> Tensor {
        let fan_in = self.in_channels * self.kernel * self.kernel;
        Tensor::from_vec(
            vec![self.out_channels, fan_in],
            ps.slice(&self.weight).to_vec(),
        )
    }

    fn sigma2_tensor(&self, ps: &ParamStore) -> Tensor {
        let fan_in = self.in_channels * self.kernel * self.kernel;
        Tensor::from_vec(
            vec![self.out_channels, fan_in],
            ps.slice(&self.log_sigma2).iter().map(|v| v.exp()).collect(),
        )
    }

    /// Fraction of weights with `log α` above the pruning threshold.
    pub fn sparsity(&self, ps: &ParamStore) -> f32 {
        let w = ps.slice(&self.weight);
        let ls = ps.slice(&self.log_sigma2);
        let pruned = w
            .iter()
            .zip(ls)
            .filter(|(&w, &ls)| ls - (w * w + VAR_EPS).ln() > LOG_ALPHA_PRUNE_THRESHOLD)
            .count();
        pruned as f32 / w.len() as f32
    }

    /// Accumulates the KL gradient (same approximation as
    /// [`crate::VarDropLinear`]); returns the scaled KL value.
    pub fn accumulate_kl_grad(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        crate::vardrop::kl_grad_for(ps, &self.weight, &self.log_sigma2, scale)
    }
}

impl Layer for VarDropConv2d {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 4, "conv input must be [n,c,h,w]");
        assert_eq!(x.shape()[1], self.in_channels, "channel mismatch");
        let geom = self.geom(x);
        let w = self.weight_tensor(ps);
        match mode {
            Mode::Eval => {
                let ls = ps.slice(&self.log_sigma2);
                let masked = Tensor::from_vec(
                    w.shape().to_vec(),
                    w.data()
                        .iter()
                        .zip(ls)
                        .map(|(&w, &ls)| {
                            if ls - (w * w + VAR_EPS).ln() > LOG_ALPHA_PRUNE_THRESHOLD {
                                0.0
                            } else {
                                w
                            }
                        })
                        .collect(),
                );
                self.cache = None;
                conv2d_forward(x, &masked, None, geom)
            }
            Mode::Train => {
                let mean = conv2d_forward(x, &w, None, geom);
                let x_sq = x.map(|v| v * v);
                let sigma2 = self.sigma2_tensor(ps);
                let var = conv2d_forward(&x_sq, &sigma2, None, geom);
                let std = var.map(|v| (v.max(0.0) + VAR_EPS).sqrt());
                let eps = Tensor::from_fn(mean.shape().to_vec(), |_| self.noise.next_normal());
                let y = mean.zip(&(&std * &eps), |m, n| m + n);
                self.cache = Some(VdConvCache {
                    geom,
                    input: x.clone(),
                    eps,
                    std,
                });
                y
            }
        }
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("VarDropConv2d::backward called before a training forward");
        let w = self.weight_tensor(ps);
        // Mean path.
        let (mut dx, dw, _) = conv2d_backward(dout, &w, &cache.input, cache.geom);
        ps.accumulate_grad(&self.weight, dw.data());
        // Variance path: treat the σ² "convolution" of x² like a conv layer
        // (x² is recomputed — cheaper to redo than to retain).
        let dvar = dout
            .zip(&cache.eps, |g, e| g * e)
            .zip(&cache.std, |ge, s| ge / (2.0 * s));
        let sigma2 = self.sigma2_tensor(ps);
        let x_sq = cache.input.map(|v| v * v);
        let (dx_sq, dsigma2, _) = conv2d_backward(&dvar, &sigma2, &x_sq, cache.geom);
        let dlog_sigma2 = dsigma2.zip(&sigma2, |d, s| d * s);
        ps.accumulate_grad(&self.log_sigma2, dlog_sigma2.data());
        // dx² → dx: chain through x² = x·x.
        for ((d, &v), &xv) in dx
            .data_mut()
            .iter_mut()
            .zip(dx_sq.data())
            .zip(cache.input.data())
        {
            *d += v * 2.0 * xv;
        }
        dx
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        vec![self.weight.clone(), self.log_sigma2.clone()]
    }

    fn kl_backward(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        self.accumulate_kl_grad(ps, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_shape_and_determinism() {
        let mut ps = ParamStore::new(1);
        let mut l = VarDropConv2d::new(&mut ps, "vdc", 2, 4, 3, 1, 1, 7);
        let x = Tensor::filled(vec![1, 2, 5, 5], 0.3);
        let a = l.forward(&x, &ps, Mode::Eval);
        let b = l.forward(&x, &ps, Mode::Eval);
        assert_eq!(a.shape(), &[1, 4, 5, 5]);
        assert_eq!(a, b);
    }

    #[test]
    fn train_is_stochastic() {
        let mut ps = ParamStore::new(1);
        let mut l = VarDropConv2d::new(&mut ps, "vdc", 1, 2, 3, 1, 1, 9);
        let ls = l.param_ranges()[1].clone();
        ps.params_mut()[ls.start()..ls.end()].fill(-2.0);
        let x = Tensor::filled(vec![1, 1, 4, 4], 1.0);
        let a = l.forward(&x, &ps, Mode::Train);
        let b = l.forward(&x, &ps, Mode::Train);
        assert_ne!(a, b);
    }

    #[test]
    fn near_zero_noise_matches_plain_conv_gradients() {
        let mut ps = ParamStore::new(5);
        let mut l = VarDropConv2d::new(&mut ps, "vdc", 1, 2, 3, 1, 1, 3);
        let ls = l.param_ranges()[1].clone();
        ps.params_mut()[ls.start()..ls.end()].fill(-30.0);
        let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| ((i as f32) * 0.31).sin());
        let y = l.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let _ = l.backward(&y, &mut ps);
        // Compare against a plain conv with the same weights.
        let mut ps2 = ParamStore::new(5);
        let mut plain = crate::conv_layer::Conv2d::new(&mut ps2, "c", 1, 2, 3, 1, 1).without_bias();
        let wr = l.param_ranges()[0].clone();
        let wr2 = plain.param_ranges()[0].clone();
        let weights = ps.slice(&wr).to_vec();
        ps2.params_mut()[wr2.start()..wr2.end()].copy_from_slice(&weights);
        let y2 = plain.forward(&x, &ps2, Mode::Train);
        ps2.zero_grads();
        let _ = plain.backward(&y2, &mut ps2);
        for (a, b) in ps.grad_slice(&wr).iter().zip(ps2.grad_slice(&wr2)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn kl_backward_is_nonzero() {
        let mut ps = ParamStore::new(1);
        let l = VarDropConv2d::new(&mut ps, "vdc", 1, 2, 3, 1, 1, 3);
        ps.zero_grads();
        let kl = l.kl_backward(&mut ps, 1.0);
        assert!(kl > 0.0);
    }
}
