//! Composite blocks: WRN-style residual blocks and DenseNet-style dense
//! blocks with transitions.
//!
//! The paper deliberately evaluates on DenseNet and WRN-28-10 because their
//! dense connectivity and residual structure make them hard to prune with
//! channel-level techniques; these blocks reproduce that structure at nano
//! scale (see DESIGN.md, substitution 3).

use crate::act::Relu;
use crate::conv_layer::Conv2d;
use crate::layer::{Layer, Mode};
use crate::norm::BatchNorm;
use crate::param::{ParamRange, ParamStore};
use crate::sequential::Sequential;
use crate::vardrop_conv::VarDropConv2d;
use dropback_tensor::Tensor;

/// Builds either a plain or a variational-dropout 3×3-style convolution,
/// letting blocks host both kinds (used by the paper's VD baseline on
/// DenseNet and WRN).
#[allow(clippy::too_many_arguments)] // geometry params mirror the conv layer ctor
fn make_conv(
    ps: &mut ParamStore,
    name: &str,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    vd_seed: Option<u64>,
) -> Box<dyn Layer> {
    match vd_seed {
        None => Box::new(Conv2d::new(ps, name, in_ch, out_ch, kernel, stride, pad).without_bias()),
        Some(seed) => Box::new(VarDropConv2d::new(
            ps,
            name,
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            seed ^ (name.len() as u64) << 7,
        )),
    }
}

/// Concatenates two `[n, c, h, w]` tensors along the channel dimension.
fn concat_channels(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 4, "concat expects [n,c,h,w]");
    assert_eq!(a.shape()[0], b.shape()[0], "batch mismatch");
    assert_eq!(a.shape()[2..], b.shape()[2..], "spatial mismatch");
    let (n, ca, cb) = (a.shape()[0], a.shape()[1], b.shape()[1]);
    let hw: usize = a.shape()[2..].iter().product();
    let mut out = Vec::with_capacity((ca + cb) * n * hw);
    for i in 0..n {
        out.extend_from_slice(&a.data()[i * ca * hw..(i + 1) * ca * hw]);
        out.extend_from_slice(&b.data()[i * cb * hw..(i + 1) * cb * hw]);
    }
    Tensor::from_vec(vec![n, ca + cb, a.shape()[2], a.shape()[3]], out)
}

/// Splits a `[n, ca+cb, h, w]` tensor into `([n, ca, ...], [n, cb, ...])`.
fn split_channels(x: &Tensor, ca: usize) -> (Tensor, Tensor) {
    let (n, c) = (x.shape()[0], x.shape()[1]);
    assert!(ca < c, "split point {ca} >= channels {c}");
    let cb = c - ca;
    let hw: usize = x.shape()[2..].iter().product();
    let mut da = Vec::with_capacity(n * ca * hw);
    let mut db = Vec::with_capacity(n * cb * hw);
    for i in 0..n {
        let base = i * c * hw;
        da.extend_from_slice(&x.data()[base..base + ca * hw]);
        db.extend_from_slice(&x.data()[base + ca * hw..base + c * hw]);
    }
    (
        Tensor::from_vec(vec![n, ca, x.shape()[2], x.shape()[3]], da),
        Tensor::from_vec(vec![n, cb, x.shape()[2], x.shape()[3]], db),
    )
}

/// A pre-activation residual block (WRN basic block):
/// `BN → ReLU → Conv3×3(stride) → BN → ReLU → Conv3×3` plus a skip
/// connection (identity, or 1×1 strided projection when the shape changes).
pub struct ResidualBlock {
    path: Sequential,
    projection: Option<Conv2d>,
    cached_input: Option<Tensor>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResidualBlock(projection: {})",
            self.projection.is_some()
        )
    }
}

impl ResidualBlock {
    /// Registers a residual block mapping `in_ch` → `out_ch` channels with
    /// the given stride on the first convolution.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
    ) -> Self {
        Self::with_variational(ps, name, in_ch, out_ch, stride, None)
    }

    /// Same as [`ResidualBlock::new`], optionally replacing the 3×3
    /// convolutions with variational-dropout convolutions (the 1×1
    /// projection, when present, stays plain).
    pub fn with_variational(
        ps: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        vd_seed: Option<u64>,
    ) -> Self {
        let mut path = Sequential::new()
            .push(BatchNorm::new(ps, &format!("{name}.bn1"), in_ch))
            .push(Relu::new());
        path.push_boxed(make_conv(
            ps,
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            3,
            stride,
            1,
            vd_seed,
        ));
        let mut path = path
            .push(BatchNorm::new(ps, &format!("{name}.bn2"), out_ch))
            .push(Relu::new());
        path.push_boxed(make_conv(
            ps,
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            vd_seed,
        ));
        let projection = if in_ch != out_ch || stride != 1 {
            Some(
                Conv2d::new(ps, &format!("{name}.proj"), in_ch, out_ch, 1, stride, 0)
                    .without_bias(),
            )
        } else {
            None
        };
        Self {
            path,
            projection,
            cached_input: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        let main = self.path.forward(x, ps, mode);
        let skip = match &mut self.projection {
            Some(proj) => proj.forward(x, ps, mode),
            None => x.clone(),
        };
        self.cached_input = Some(x.clone());
        &main + &skip
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let _ = self
            .cached_input
            .take()
            .expect("ResidualBlock::backward called before forward");
        let dmain = self.path.backward(dout, ps);
        let dskip = match &mut self.projection {
            Some(proj) => proj.backward(dout, ps),
            None => dout.clone(),
        };
        &dmain + &dskip
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        let mut v = self.path.param_ranges();
        if let Some(p) = &self.projection {
            v.extend(p.param_ranges());
        }
        v
    }

    fn kl_backward(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        self.path.kl_backward(ps, scale)
            + self
                .projection
                .as_ref()
                .map(|p| p.kl_backward(ps, scale))
                .unwrap_or(0.0)
    }
}

/// A DenseNet dense block: `layers` stages of `BN → ReLU → Conv3×3(growth)`
/// where each stage consumes the concatenation of the block input and all
/// previous stage outputs. Output has `in_ch + layers * growth` channels.
pub struct DenseBlock {
    stages: Vec<Sequential>,
    in_ch: usize,
    growth: usize,
    cached_inputs: Vec<Tensor>,
}

impl std::fmt::Debug for DenseBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseBlock({} stages, growth {})",
            self.stages.len(),
            self.growth
        )
    }
}

impl DenseBlock {
    /// Registers a dense block of `layers` stages with `growth` new channels
    /// per stage on `in_ch` input channels.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `growth == 0`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_ch: usize,
        layers: usize,
        growth: usize,
    ) -> Self {
        Self::with_variational(ps, name, in_ch, layers, growth, None)
    }

    /// Same as [`DenseBlock::new`], optionally with variational-dropout
    /// convolutions in every stage.
    pub fn with_variational(
        ps: &mut ParamStore,
        name: &str,
        in_ch: usize,
        layers: usize,
        growth: usize,
        vd_seed: Option<u64>,
    ) -> Self {
        assert!(layers > 0 && growth > 0, "empty dense block");
        let stages = (0..layers)
            .map(|i| {
                let ch = in_ch + i * growth;
                let mut s = Sequential::new()
                    .push(BatchNorm::new(ps, &format!("{name}.l{i}.bn"), ch))
                    .push(Relu::new());
                s.push_boxed(make_conv(
                    ps,
                    &format!("{name}.l{i}.conv"),
                    ch,
                    growth,
                    3,
                    1,
                    1,
                    vd_seed.map(|s| s.wrapping_add(i as u64)),
                ));
                s
            })
            .collect();
        Self {
            stages,
            in_ch,
            growth,
            cached_inputs: Vec::new(),
        }
    }

    /// Channels produced by the block for `in_ch` inputs.
    pub fn out_channels(&self) -> usize {
        self.in_ch + self.stages.len() * self.growth
    }
}

impl Layer for DenseBlock {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        assert_eq!(x.shape()[1], self.in_ch, "dense block channel mismatch");
        self.cached_inputs.clear();
        let mut features = x.clone();
        for stage in &mut self.stages {
            self.cached_inputs.push(features.clone());
            let new = stage.forward(&features, ps, mode);
            features = concat_channels(&features, &new);
        }
        features
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        assert_eq!(
            self.cached_inputs.len(),
            self.stages.len(),
            "DenseBlock::backward called before forward"
        );
        let mut dfeat = dout.clone();
        for (stage, input) in self
            .stages
            .iter_mut()
            .zip(self.cached_inputs.drain(..))
            .rev()
        {
            let (dprev, dnew) = split_channels(&dfeat, input.shape()[1]);
            let dthrough = stage.backward(&dnew, ps);
            dfeat = &dprev + &dthrough;
        }
        dfeat
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        self.stages.iter().flat_map(|s| s.param_ranges()).collect()
    }

    fn kl_backward(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        self.stages.iter().map(|s| s.kl_backward(ps, scale)).sum()
    }
}

/// A DenseNet transition: `BN → ReLU → Conv1×1(out_ch) → AvgPool2×2`,
/// halving the spatial resolution and compressing channels.
pub struct Transition {
    inner: Sequential,
}

impl std::fmt::Debug for Transition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Transition")
    }
}

impl Transition {
    /// Registers a transition from `in_ch` to `out_ch` channels.
    pub fn new(ps: &mut ParamStore, name: &str, in_ch: usize, out_ch: usize) -> Self {
        let inner = Sequential::new()
            .push(BatchNorm::new(ps, &format!("{name}.bn"), in_ch))
            .push(Relu::new())
            .push(Conv2d::new(ps, &format!("{name}.conv"), in_ch, out_ch, 1, 1, 0).without_bias())
            .push(crate::pool::AvgPool2d::new(2, 2));
        Self { inner }
    }
}

impl Layer for Transition {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        self.inner.forward(x, ps, mode)
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        self.inner.backward(dout, ps)
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        self.inner.param_ranges()
    }

    fn kl_backward(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        self.inner.kl_backward(ps, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Tensor::from_fn(vec![2, 2, 2, 2], |i| i as f32);
        let b = Tensor::from_fn(vec![2, 3, 2, 2], |i| 100.0 + i as f32);
        let c = concat_channels(&a, &b);
        assert_eq!(c.shape(), &[2, 5, 2, 2]);
        let (a2, b2) = split_channels(&c, 2);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn residual_identity_shape() {
        let mut ps = ParamStore::new(1);
        let mut block = ResidualBlock::new(&mut ps, "res", 8, 8, 1);
        let x = Tensor::filled(vec![2, 8, 4, 4], 0.1);
        let y = block.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
        let dx = block.backward(&y, &mut ps);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_projection_shape() {
        let mut ps = ParamStore::new(1);
        let mut block = ResidualBlock::new(&mut ps, "res", 4, 8, 2);
        let x = Tensor::filled(vec![1, 4, 8, 8], 0.1);
        let y = block.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        let dx = block.backward(&y, &mut ps);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_gradient_flows_through_skip() {
        // Zero all path weights: output == skip input, so dx == dout.
        let mut ps = ParamStore::new(1);
        let mut block = ResidualBlock::new(&mut ps, "res", 4, 4, 1);
        for r in block.param_ranges() {
            if r.name().contains("conv") {
                ps.params_mut()[r.start()..r.end()].fill(0.0);
            }
        }
        let x = Tensor::from_fn(vec![1, 4, 3, 3], |i| (i as f32 * 0.1).sin());
        let y = block.forward(&x, &ps, Mode::Train);
        assert_eq!(y, x); // conv weights zero => main path contributes nothing
        ps.zero_grads();
        let dout = Tensor::filled(vec![1, 4, 3, 3], 1.0);
        let dx = block.backward(&dout, &mut ps);
        assert_eq!(dx, dout);
    }

    #[test]
    fn dense_block_grows_channels() {
        let mut ps = ParamStore::new(1);
        let mut block = DenseBlock::new(&mut ps, "dense", 4, 3, 2);
        assert_eq!(block.out_channels(), 10);
        let x = Tensor::filled(vec![2, 4, 4, 4], 0.2);
        let y = block.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 10, 4, 4]);
        let dx = block.backward(&y, &mut ps);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn dense_block_input_passthrough() {
        // The first in_ch channels of the output are the input itself.
        let mut ps = ParamStore::new(1);
        let mut block = DenseBlock::new(&mut ps, "dense", 2, 2, 3);
        let x = Tensor::from_fn(vec![1, 2, 3, 3], |i| i as f32);
        let y = block.forward(&x, &ps, Mode::Train);
        let (head, _) = split_channels(&y, 2);
        assert_eq!(head, x);
    }

    #[test]
    fn dense_block_gradients_match_finite_difference() {
        let mut ps = ParamStore::new(3);
        let mut block = DenseBlock::new(&mut ps, "dense", 2, 2, 2);
        let x = Tensor::from_fn(vec![1, 2, 3, 3], |i| ((i as f32) * 0.37).sin());
        let y = block.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let _ = block.backward(&y, &mut ps); // loss = 0.5||y||^2
        let ranges = block.param_ranges();
        let conv_range = ranges
            .iter()
            .find(|r| r.name().contains("l0.conv"))
            .unwrap()
            .clone();
        let eps = 1e-2;
        for idx in [0usize, 9] {
            let gi = conv_range.start() + idx;
            let orig = ps.params()[gi];
            ps.params_mut()[gi] = orig + eps;
            let lp = 0.5 * block.forward(&x, &ps, Mode::Train).norm_sq();
            ps.params_mut()[gi] = orig - eps;
            let lm = 0.5 * block.forward(&x, &ps, Mode::Train).norm_sq();
            ps.params_mut()[gi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = ps.grads()[gi];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "{num} vs {ana}"
            );
        }
    }

    #[test]
    fn transition_halves_spatial() {
        let mut ps = ParamStore::new(1);
        let mut t = Transition::new(&mut ps, "tr", 8, 4);
        let x = Tensor::filled(vec![2, 8, 8, 8], 0.3);
        let y = t.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
        let dx = t.backward(&y, &mut ps);
        assert_eq!(dx.shape(), x.shape());
    }
}
