//! Pooling layers.

use crate::layer::{Layer, Mode};
use crate::param::ParamStore;
use dropback_tensor::conv::{
    avgpool2d, avgpool2d_backward, global_avg_pool, global_avg_pool_backward, maxpool2d,
    maxpool2d_backward,
};
use dropback_tensor::Tensor;

/// Max pooling with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    size: usize,
    stride: usize,
    cache: Option<(Vec<u32>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pool with window `size` and stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "zero pooling geometry");
        Self {
            size,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        let (y, argmax) = maxpool2d(x, self.size, self.stride);
        self.cache = Some((argmax, x.shape().to_vec()));
        y
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let (argmax, shape) = self
            .cache
            .take()
            .expect("MaxPool2d::backward called before forward");
        maxpool2d_backward(dout, &argmax, &shape)
    }
}

/// Average pooling with a square window.
#[derive(Debug)]
pub struct AvgPool2d {
    size: usize,
    stride: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool with window `size` and stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "zero pooling geometry");
        Self {
            size,
            stride,
            cached_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        self.cached_shape = Some(x.shape().to_vec());
        avgpool2d(x, self.size, self.stride)
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("AvgPool2d::backward called before forward");
        avgpool2d_backward(dout, self.size, self.stride, &shape)
    }
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        self.cached_shape = Some(x.shape().to_vec());
        global_avg_pool(x)
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("GlobalAvgPool::backward called before forward");
        global_avg_pool_backward(dout, &shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut ps = ParamStore::new(1);
        let mut l = MaxPool2d::new(2, 2);
        let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| i as f32);
        let y = l.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5., 7., 13., 15.]);
        let dx = l.backward(&Tensor::filled(vec![1, 1, 2, 2], 2.0), &mut ps);
        assert_eq!(dx.data()[5], 2.0);
        assert_eq!(dx.data()[0], 0.0);
    }

    #[test]
    fn avgpool_layer_roundtrip() {
        let mut ps = ParamStore::new(1);
        let mut l = AvgPool2d::new(2, 2);
        let x = Tensor::filled(vec![1, 2, 4, 4], 4.0);
        let y = l.forward(&x, &ps, Mode::Train);
        assert!(y.data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
        let dx = l.backward(&y, &mut ps);
        assert_eq!(dx.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn global_pool_layer_roundtrip() {
        let mut ps = ParamStore::new(1);
        let mut l = GlobalAvgPool::new();
        let x = Tensor::from_fn(vec![2, 3, 4, 4], |i| (i % 16) as f32);
        let y = l.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[2, 3]);
        assert!((y.data()[0] - 7.5).abs() < 1e-5);
        let dx = l.backward(&y, &mut ps);
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "zero pooling geometry")]
    fn zero_size_panics() {
        MaxPool2d::new(0, 1);
    }
}
