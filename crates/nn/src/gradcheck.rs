//! Finite-difference gradient checking for [`Layer`] implementations.
//!
//! Every hand-derived backward pass in this crate is verified against
//! central finite differences; this module exposes that machinery so
//! downstream layer authors get the same safety net. The probe loss is
//! `L = 0.5‖y‖²` (so `dL/dy = y`), which exercises every output element.

use crate::layer::{Layer, Mode};
use crate::param::ParamStore;
use dropback_tensor::Tensor;

/// Result of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Worst relative error over checked parameter gradients.
    pub max_param_err: f32,
    /// Worst relative error over checked input gradients.
    pub max_input_err: f32,
    /// Number of parameter coordinates checked.
    pub params_checked: usize,
    /// Number of input coordinates checked.
    pub inputs_checked: usize,
}

impl GradCheckReport {
    /// Whether both error bounds are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_param_err < tol && self.max_input_err < tol
    }
}

fn loss(layer: &mut dyn Layer, ps: &ParamStore, x: &Tensor) -> f32 {
    let y = layer.forward(x, ps, Mode::Train);
    0.5 * y.norm_sq()
}

fn rel_err(numeric: f32, analytic: f32) -> f32 {
    (numeric - analytic).abs() / (1.0 + numeric.abs().max(analytic.abs()))
}

/// Checks a layer's parameter and input gradients against central finite
/// differences at stride-sampled coordinates.
///
/// The layer must be deterministic between calls (disable dropout-style
/// stochasticity or fix its seed stream before checking). `eps` around
/// `1e-2`–`1e-3` works well in f32.
///
/// # Panics
///
/// Panics if `eps <= 0` or `stride == 0`.
pub fn check_layer(
    layer: &mut dyn Layer,
    ps: &mut ParamStore,
    x: &Tensor,
    eps: f32,
    stride: usize,
) -> GradCheckReport {
    assert!(eps > 0.0, "eps must be positive");
    assert!(stride > 0, "stride must be positive");
    // Analytic gradients.
    let y = layer.forward(x, ps, Mode::Train);
    ps.zero_grads();
    let dx = layer.backward(&y, ps);
    let analytic_param_grads = ps.grads().to_vec();
    // Parameter gradients.
    let mut max_param_err = 0.0f32;
    let mut params_checked = 0usize;
    let ranges: Vec<_> = layer.param_ranges();
    for r in &ranges {
        for i in (r.start()..r.end()).step_by(stride) {
            let orig = ps.params()[i];
            ps.params_mut()[i] = orig + eps;
            let lp = loss(layer, ps, x);
            ps.params_mut()[i] = orig - eps;
            let lm = loss(layer, ps, x);
            ps.params_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            max_param_err = max_param_err.max(rel_err(numeric, analytic_param_grads[i]));
            params_checked += 1;
        }
    }
    // Input gradients.
    let mut max_input_err = 0.0f32;
    let mut inputs_checked = 0usize;
    let mut xp = x.clone();
    for i in (0..x.len()).step_by(stride) {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = loss(layer, ps, &xp);
        xp.data_mut()[i] = orig - eps;
        let lm = loss(layer, ps, &xp);
        xp.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        max_input_err = max_input_err.max(rel_err(numeric, dx.data()[i]));
        inputs_checked += 1;
    }
    GradCheckReport {
        max_param_err,
        max_input_err,
        params_checked,
        inputs_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::{PRelu, Relu};
    use crate::conv_layer::Conv2d;
    use crate::linear::Linear;
    use crate::norm::BatchNorm;
    use crate::pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};

    fn wavy(shape: Vec<usize>) -> Tensor {
        Tensor::from_fn(shape, |i| ((i as f32) * 0.61).sin() * 0.8)
    }

    #[test]
    fn linear_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = Linear::new(&mut ps, "fc", 6, 4);
        let x = wavy(vec![3, 6]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 3);
        assert!(r.passes(0.05), "{r:?}");
        assert!(r.params_checked > 0 && r.inputs_checked > 0);
    }

    #[test]
    fn conv_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = Conv2d::new(&mut ps, "c", 2, 3, 3, 1, 1);
        let x = wavy(vec![1, 2, 5, 5]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 7);
        assert!(r.passes(0.08), "{r:?}");
    }

    #[test]
    fn relu_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = Relu::new();
        // Keep values away from the kink at 0.
        let x = Tensor::from_fn(vec![2, 8], |i| {
            if i % 2 == 0 {
                1.0 + i as f32 * 0.1
            } else {
                -1.0 - i as f32 * 0.1
            }
        });
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.05), "{r:?}");
    }

    #[test]
    fn prelu_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = PRelu::new(&mut ps, "p", 4);
        let x = Tensor::from_fn(vec![3, 4], |i| if i % 3 == 0 { -1.2 } else { 0.8 });
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.05), "{r:?}");
    }

    #[test]
    fn batchnorm_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = BatchNorm::new(&mut ps, "bn", 3);
        let x = wavy(vec![5, 3]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 1);
        assert!(r.passes(0.08), "{r:?}");
    }

    #[test]
    fn maxpool_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = MaxPool2d::new(2, 2);
        // Distinct values keep every pooling window's argmax stable under
        // the ±eps probes (ties would make the loss non-differentiable).
        let x = Tensor::from_fn(vec![2, 2, 4, 4], |i| ((i * 7919) % 101) as f32 * 0.1);
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.05), "{r:?}");
        assert!(r.inputs_checked > 0);
    }

    #[test]
    fn avgpool_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = AvgPool2d::new(2, 2);
        let x = wavy(vec![2, 3, 4, 4]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.05), "{r:?}");
    }

    #[test]
    fn global_avg_pool_passes() {
        let mut ps = ParamStore::new(3);
        let mut l = GlobalAvgPool::new();
        let x = wavy(vec![2, 4, 3, 3]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.05), "{r:?}");
    }

    #[test]
    fn conv_passes_at_parallel_sizes() {
        // Large enough that im2col/conv cross the pool's chunking paths
        // (multiple channels and samples), checked with a sparse stride to
        // stay fast. The result must agree with finite differences at the
        // ambient thread count, whatever it is.
        let mut ps = ParamStore::new(5);
        let mut l = Conv2d::new(&mut ps, "c", 4, 6, 3, 1, 1);
        let x = wavy(vec![2, 4, 8, 8]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 29);
        assert!(r.passes(0.08), "{r:?}");
        assert!(r.params_checked > 0 && r.inputs_checked > 0);
    }

    #[test]
    fn conv_passes_at_tile_straddling_sizes() {
        // 7 output channels and a 5×5 output plane leave the packed GEMM's
        // 6×16 microkernel one row and nine columns of edge tile on every
        // panel (m=7 ∤ 6, n=25 ∤ 16, k=27), so this pins the scratch-tile
        // edge path through a full forward/backward gradient check.
        let mut ps = ParamStore::new(7);
        let mut l = Conv2d::new(&mut ps, "c", 3, 7, 3, 1, 1);
        let x = wavy(vec![1, 3, 5, 5]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 11);
        assert!(r.passes(0.08), "{r:?}");
        assert!(r.params_checked > 0 && r.inputs_checked > 0);
    }

    #[test]
    fn batchnorm_passes_at_parallel_sizes() {
        let mut ps = ParamStore::new(5);
        let mut l = BatchNorm::new(&mut ps, "bn", 8);
        let x = wavy(vec![32, 8]);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 17);
        assert!(r.passes(0.08), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_panics() {
        let mut ps = ParamStore::new(3);
        let mut l = Relu::new();
        check_layer(&mut l, &mut ps, &Tensor::zeros(vec![1, 2]), 0.0, 1);
    }
}
