//! The [`Layer`] trait: explicit forward/backward with layer-owned caches.

use crate::param::ParamStore;
use dropback_tensor::Tensor;

/// Whether a pass uses training-time behaviour (dropout active, batch-norm
/// batch statistics) or inference behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: stochastic layers sample, normalization uses batch stats.
    Train,
    /// Evaluation: deterministic, normalization uses running stats.
    Eval,
}

/// A differentiable network stage.
///
/// Layers read their parameters from the shared [`ParamStore`] and own any
/// caches needed between `forward` and `backward` (input activations,
/// dropout masks, pooling argmaxes, ...). A `backward` call must follow the
/// `forward` call whose gradient it propagates.
pub trait Layer {
    /// Computes the layer output, caching whatever `backward` will need.
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor;

    /// Propagates `dout` (gradient w.r.t. this layer's output), accumulating
    /// parameter gradients into `ps` and returning the gradient w.r.t. the
    /// layer's input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor;

    /// The parameter ranges this layer registered, in order (empty for
    /// parameter-free layers).
    fn param_ranges(&self) -> Vec<crate::param::ParamRange> {
        Vec::new()
    }

    /// Accumulates any variational (KL) regularizer gradients this layer
    /// carries, scaled by `scale`, returning the (scaled) KL value. The
    /// default is a no-op; variational-dropout layers override it, and
    /// containers sum over children.
    fn kl_backward(&self, _ps: &mut ParamStore, _scale: f32) -> f32 {
        0.0
    }
}
