//! Ordered layer container.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_tensor::Tensor;

/// A stack of layers applied in order.
///
/// `Sequential` itself implements [`Layer`], so stacks nest (residual and
/// dense blocks use internal `Sequential`s for their branches).
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, ps, mode);
        }
        cur
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let mut cur = dout.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur, ps);
        }
        cur
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        self.layers.iter().flat_map(|l| l.param_ranges()).collect()
    }

    fn kl_backward(&self, ps: &mut ParamStore, scale: f32) -> f32 {
        self.layers.iter().map(|l| l.kl_backward(ps, scale)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::linear::Linear;

    #[test]
    fn forward_composes() {
        let mut ps = ParamStore::new(1);
        let l1 = Linear::new(&mut ps, "a", 4, 4);
        let l2 = Linear::new(&mut ps, "b", 4, 2);
        let mut seq = Sequential::new().push(l1).push(Relu::new()).push(l2);
        let x = Tensor::filled(vec![3, 4], 0.5);
        let y = seq.forward(&x, &ps, Mode::Train);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn backward_produces_input_grad() {
        let mut ps = ParamStore::new(2);
        let l1 = Linear::new(&mut ps, "a", 4, 3);
        let mut seq = Sequential::new().push(l1).push(Relu::new());
        let x = Tensor::filled(vec![2, 4], 1.0);
        let y = seq.forward(&x, &ps, Mode::Train);
        ps.zero_grads();
        let dx = seq.backward(&y, &mut ps);
        assert_eq!(dx.shape(), &[2, 4]);
        assert!(ps.grads().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn param_ranges_collects_all() {
        let mut ps = ParamStore::new(1);
        let l1 = Linear::new(&mut ps, "a", 4, 4);
        let l2 = Linear::new(&mut ps, "b", 4, 2);
        let seq = Sequential::new().push(l1).push(Relu::new()).push(l2);
        assert_eq!(seq.param_ranges().len(), 4); // 2 weights + 2 biases
    }
}
