//! Additional activation layers (sigmoid, tanh, GELU) and layer
//! normalization, rounding out the substrate beyond what the paper's
//! models need.

use crate::layer::{Layer, Mode};
use crate::param::{ParamRange, ParamStore};
use dropback_prng::InitScheme;
use dropback_tensor::activations as act;
use dropback_tensor::Tensor;

/// Elementwise logistic sigmoid.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        let y = act::sigmoid(x);
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("Sigmoid::backward called before forward");
        act::sigmoid_backward(dout, &y)
    }
}

/// Elementwise hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        let y = act::tanh(x);
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("Tanh::backward called before forward");
        act::tanh_backward(dout, &y)
    }
}

/// Elementwise GELU (tanh approximation).
#[derive(Debug, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, _ps: &ParamStore, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        act::gelu(x)
    }

    fn backward(&mut self, dout: &Tensor, _ps: &mut ParamStore) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Gelu::backward called before forward");
        act::gelu_backward(dout, &x)
    }
}

const LN_EPS: f32 = 1e-5;

/// Layer normalization over the last dimension of `[n, d]` inputs, with
/// learned per-feature scale (γ, init 1) and shift (β, init 0).
///
/// Like batch-norm, both parameters are constants at init, so DropBack can
/// regenerate them.
#[derive(Debug)]
pub struct LayerNorm {
    dim: usize,
    gamma: ParamRange,
    beta: ParamRange,
    cache: Option<LnCache>,
}

#[derive(Debug)]
struct LnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Registers a layer-norm over feature dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(ps: &mut ParamStore, name: &str, dim: usize) -> Self {
        assert!(dim > 0, "LayerNorm needs a positive dimension");
        let gamma = ps.register(&format!("{name}.gamma"), dim, InitScheme::Constant(1.0));
        let beta = ps.register(&format!("{name}.beta"), dim, InitScheme::Constant(0.0));
        Self {
            dim,
            gamma,
            beta,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, ps: &ParamStore, _mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 2, "LayerNorm input must be [n, d]");
        assert_eq!(x.shape()[1], self.dim, "LayerNorm dim mismatch");
        let n = x.shape()[0];
        let gamma = ps.slice(&self.gamma);
        let beta = ps.slice(&self.beta);
        let mut xhat = x.clone();
        let mut inv_std = Vec::with_capacity(n);
        for row in xhat.data_mut().chunks_exact_mut(self.dim) {
            let mean: f32 = row.iter().sum::<f32>() / self.dim as f32;
            let var: f32 =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / self.dim as f32;
            let is = 1.0 / (var + LN_EPS).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * is;
            }
            inv_std.push(is);
        }
        let mut y = xhat.clone();
        for row in y.data_mut().chunks_exact_mut(self.dim) {
            for (v, (&g, &b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
                *v = g * *v + b;
            }
        }
        self.cache = Some(LnCache { xhat, inv_std });
        y
    }

    fn backward(&mut self, dout: &Tensor, ps: &mut ParamStore) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("LayerNorm::backward called before forward");
        let d = self.dim as f32;
        let gamma = ps.slice(&self.gamma).to_vec();
        let mut dgamma = vec![0.0f32; self.dim];
        let mut dbeta = vec![0.0f32; self.dim];
        let mut dx = dout.clone();
        for ((grow, xrow), &is) in dx
            .data_mut()
            .chunks_exact_mut(self.dim)
            .zip(cache.xhat.data().chunks_exact(self.dim))
            .zip(&cache.inv_std)
        {
            // dγ_j += dout_j·x̂_j ; dβ_j += dout_j ;
            // dxhat = dout·γ ; dx = is/d·(d·dxhat − Σdxhat − x̂·Σ(dxhat·x̂)).
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for (j, (g, &xh)) in grow.iter_mut().zip(xrow).enumerate() {
                dgamma[j] += *g * xh;
                dbeta[j] += *g;
                let dxh = *g * gamma[j];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh;
                *g = dxh; // stash dxhat in place
            }
            for (g, &xh) in grow.iter_mut().zip(xrow) {
                *g = is / d * (d * *g - sum_dxhat - xh * sum_dxhat_xhat);
            }
        }
        ps.accumulate_grad(&self.gamma, &dgamma);
        ps.accumulate_grad(&self.beta, &dbeta);
        dx
    }

    fn param_ranges(&self) -> Vec<ParamRange> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;

    #[test]
    fn sigmoid_layer_gradcheck() {
        let mut ps = ParamStore::new(1);
        let mut l = Sigmoid::new();
        let x = Tensor::from_fn(vec![2, 5], |i| (i as f32 * 0.7).sin() * 2.0);
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.02), "{r:?}");
    }

    #[test]
    fn tanh_layer_gradcheck() {
        let mut ps = ParamStore::new(1);
        let mut l = Tanh::new();
        let x = Tensor::from_fn(vec![2, 5], |i| (i as f32 * 0.7).cos() * 2.0);
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.02), "{r:?}");
    }

    #[test]
    fn gelu_layer_gradcheck() {
        let mut ps = ParamStore::new(1);
        let mut l = Gelu::new();
        let x = Tensor::from_fn(vec![2, 5], |i| (i as f32 * 0.9).sin() * 3.0);
        let r = check_layer(&mut l, &mut ps, &x, 1e-3, 1);
        assert!(r.passes(0.03), "{r:?}");
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ps = ParamStore::new(1);
        let mut l = LayerNorm::new(&mut ps, "ln", 8);
        let x = Tensor::from_fn(vec![3, 8], |i| (i as f32 * 1.3).sin() * 5.0 + 2.0);
        let y = l.forward(&x, &ps, Mode::Train);
        for row in y.data().chunks_exact(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "{mean}");
            assert!((var - 1.0).abs() < 1e-3, "{var}");
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut ps = ParamStore::new(2);
        let mut l = LayerNorm::new(&mut ps, "ln", 6);
        // Nudge γ/β off their defaults so their gradients are exercised.
        let g = l.param_ranges()[0].clone();
        let b = l.param_ranges()[1].clone();
        for (i, p) in ps.params_mut()[g.start()..g.end()].iter_mut().enumerate() {
            *p = 1.0 + 0.1 * i as f32;
        }
        for (i, p) in ps.params_mut()[b.start()..b.end()].iter_mut().enumerate() {
            *p = -0.2 + 0.05 * i as f32;
        }
        let x = Tensor::from_fn(vec![4, 6], |i| ((i * 13 % 7) as f32) * 0.4 - 1.0);
        let r = check_layer(&mut l, &mut ps, &x, 1e-2, 1);
        assert!(r.passes(0.08), "{r:?}");
    }

    #[test]
    fn layernorm_params_are_regenerable_constants() {
        let mut ps = ParamStore::new(1);
        let l = LayerNorm::new(&mut ps, "ln", 4);
        for r in l.param_ranges() {
            assert!(
                !r.scheme().needs_prng(),
                "{} must be constant-init",
                r.name()
            );
        }
    }
}
