//! The flat, regenerable parameter arena.

use dropback_prng::InitScheme;

/// A named, contiguous range of parameters inside a [`ParamStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRange {
    name: String,
    start: usize,
    len: usize,
    scheme: InitScheme,
}

impl ParamRange {
    /// Human-readable name (e.g. `"fc1.weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// First global parameter index of the range.
    pub fn start(&self) -> usize {
        self.start
    }
    /// Number of parameters in the range.
    pub fn len(&self) -> usize {
        self.len
    }
    /// Whether the range is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
    /// One-past-the-end global index.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
    /// The initialization scheme for this range.
    pub fn scheme(&self) -> InitScheme {
        self.scheme
    }
}

/// Flat parameter/gradient arena with index-addressable initialization.
///
/// All of a network's parameters live in one `Vec<f32>` with a parallel
/// gradient vector. Each layer owns a [`ParamRange`]; the store can
/// regenerate any parameter's *initial* value from `(seed, global index)`
/// alone — the primitive DropBack builds on.
#[derive(Debug, Clone)]
pub struct ParamStore {
    seed: u64,
    params: Vec<f32>,
    grads: Vec<f32>,
    ranges: Vec<ParamRange>,
}

impl ParamStore {
    /// Creates an empty store whose regeneration streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            params: Vec::new(),
            grads: Vec::new(),
            ranges: Vec::new(),
        }
    }

    /// The store's regeneration seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Registers `len` parameters named `name` with initialization `scheme`,
    /// materializes their initial values, and returns the new range.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn register(&mut self, name: &str, len: usize, scheme: InitScheme) -> ParamRange {
        assert!(len > 0, "cannot register empty parameter range {name:?}");
        let start = self.params.len();
        let range = ParamRange {
            name: name.to_string(),
            start,
            len,
            scheme,
        };
        self.params.reserve(len);
        for i in start..start + len {
            self.params.push(scheme.value(self.seed, i as u64));
        }
        self.grads.resize(self.params.len(), 0.0);
        self.ranges.push(range.clone());
        range
    }

    /// Total number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// All registered ranges, in registration order.
    pub fn ranges(&self) -> &[ParamRange] {
        &self.ranges
    }

    /// The full flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable access to the full flat parameter vector (used by
    /// optimizers).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// The full flat gradient vector.
    pub fn grads(&self) -> &[f32] {
        &self.grads
    }

    /// Mutable access to the full flat gradient vector.
    pub fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grads
    }

    /// The parameter slice of `range`.
    pub fn slice(&self, range: &ParamRange) -> &[f32] {
        &self.params[range.start..range.end()]
    }

    /// The gradient slice of `range`.
    pub fn grad_slice(&self, range: &ParamRange) -> &[f32] {
        &self.grads[range.start..range.end()]
    }

    /// Simultaneous read access to `range`'s parameters and write access to
    /// its gradients — what a layer backward pass needs.
    pub fn params_and_grads_mut(&mut self, range: &ParamRange) -> (&[f32], &mut [f32]) {
        (
            &self.params[range.start..range.end()],
            &mut self.grads[range.start..range.end()],
        )
    }

    /// Simultaneous mutable access to all parameters and read access to all
    /// gradients — the shape an optimizer's update loop needs.
    pub fn update_view(&mut self) -> (&mut [f32], &[f32]) {
        (&mut self.params, &self.grads)
    }

    /// Accumulates `delta` into `range`'s gradients.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != range.len()`.
    pub fn accumulate_grad(&mut self, range: &ParamRange, delta: &[f32]) {
        assert_eq!(delta.len(), range.len(), "gradient length mismatch");
        for (g, &d) in self.grads[range.start..range.end()].iter_mut().zip(delta) {
            *g += d;
        }
    }

    /// Zeroes every gradient (call once per training step).
    pub fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Regenerates the *initial* value of global parameter index `i` in O(1)
    /// without reading stored weights — DropBack's storage-avoidance
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn init_value(&self, i: usize) -> f32 {
        let range = self
            .range_of(i)
            .unwrap_or_else(|| panic!("parameter index {i} out of range"));
        range.scheme.value(self.seed, i as u64)
    }

    /// The range containing global index `i`, if any.
    pub fn range_of(&self, i: usize) -> Option<&ParamRange> {
        // Ranges are sorted by construction; binary search by start.
        let idx = self
            .ranges
            .partition_point(|r| r.start <= i)
            .checked_sub(1)?;
        let r = &self.ranges[idx];
        (i < r.end()).then_some(r)
    }

    /// Snapshot of the full initial weight vector, regenerated (not read
    /// from storage). Mostly useful for diffusion-distance analysis.
    pub fn regen_initial(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.init_value(i)).collect()
    }

    /// Resets every parameter to its regenerated initial value and zeroes
    /// gradients (fresh-training reset).
    pub fn reset(&mut self) {
        for r in &self.ranges {
            for i in r.start..r.end() {
                self.params[i] = r.scheme.value(self.seed, i as u64);
            }
        }
        self.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_materializes_init() {
        let mut ps = ParamStore::new(7);
        let r = ps.register("w", 16, InitScheme::lecun_normal(4));
        assert_eq!(ps.len(), 16);
        for i in r.start()..r.end() {
            assert_eq!(ps.params()[i], ps.init_value(i));
        }
    }

    #[test]
    fn multiple_ranges_are_contiguous() {
        let mut ps = ParamStore::new(1);
        let a = ps.register("a", 5, InitScheme::Constant(1.0));
        let b = ps.register("b", 3, InitScheme::Constant(2.0));
        assert_eq!(a.start(), 0);
        assert_eq!(b.start(), 5);
        assert_eq!(ps.len(), 8);
        assert_eq!(ps.slice(&a), &[1.0; 5]);
        assert_eq!(ps.slice(&b), &[2.0; 3]);
    }

    #[test]
    fn range_of_finds_owner() {
        let mut ps = ParamStore::new(1);
        ps.register("a", 5, InitScheme::Constant(0.0));
        ps.register("b", 3, InitScheme::Constant(0.0));
        assert_eq!(ps.range_of(0).unwrap().name(), "a");
        assert_eq!(ps.range_of(4).unwrap().name(), "a");
        assert_eq!(ps.range_of(5).unwrap().name(), "b");
        assert_eq!(ps.range_of(7).unwrap().name(), "b");
        assert!(ps.range_of(8).is_none());
    }

    #[test]
    fn init_value_survives_mutation() {
        let mut ps = ParamStore::new(3);
        let r = ps.register("w", 8, InitScheme::lecun_normal(2));
        let inits: Vec<f32> = (0..8).map(|i| ps.init_value(i)).collect();
        for p in ps.params_mut() {
            *p = 99.0;
        }
        for (i, &init) in inits.iter().enumerate().take(r.end()).skip(r.start()) {
            assert_eq!(ps.init_value(i), init);
        }
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut ps = ParamStore::new(3);
        let r = ps.register("w", 4, InitScheme::Constant(0.0));
        ps.accumulate_grad(&r, &[1.0, 2.0, 3.0, 4.0]);
        ps.accumulate_grad(&r, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(ps.grad_slice(&r), &[2.0, 3.0, 4.0, 5.0]);
        ps.zero_grads();
        assert_eq!(ps.grad_slice(&r), &[0.0; 4]);
    }

    #[test]
    fn reset_restores_init() {
        let mut ps = ParamStore::new(3);
        ps.register("w", 8, InitScheme::lecun_normal(2));
        let before = ps.params().to_vec();
        for p in ps.params_mut() {
            *p += 1.0;
        }
        ps.reset();
        assert_eq!(ps.params(), &before[..]);
    }

    #[test]
    fn regen_initial_matches_registration() {
        let mut ps = ParamStore::new(9);
        ps.register("a", 10, InitScheme::lecun_normal(5));
        ps.register("b", 6, InitScheme::Constant(0.5));
        assert_eq!(ps.regen_initial(), ps.params());
    }

    #[test]
    #[should_panic(expected = "cannot register empty")]
    fn empty_register_panics() {
        ParamStore::new(1).register("w", 0, InitScheme::Constant(0.0));
    }

    #[test]
    fn different_seeds_different_inits() {
        let mut a = ParamStore::new(1);
        let mut b = ParamStore::new(2);
        a.register("w", 32, InitScheme::lecun_normal(8));
        b.register("w", 32, InitScheme::lecun_normal(8));
        assert_ne!(a.params(), b.params());
    }
}
